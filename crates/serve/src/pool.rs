//! The shard pool: N independent engines executing batched prediction
//! requests — over one shared compiled design (the homogeneous
//! constructors) or one design *per shard* (the heterogeneous path).
//!
//! Each shard owns a full engine — its own AXI stream master, HCB
//! register chain and pipeline — exactly as N accelerator instances on
//! the fabric would each sit behind an independent AXI stream. The pool
//! adds the processor-side runtime around them: bounded admission
//! ([`RequestQueue`]), width-aware deterministic dispatch ([`Dispatcher`])
//! and result reassembly in submission order.
//!
//! ## Determinism guarantee
//!
//! A request's classification depends only on the design of the shard
//! that executed it and the datapoint — never on the shard count, the
//! dispatch policy or the worker-thread count. The dispatcher itself is a
//! pure function of submission order and per-shard load profiles, so the
//! *assignment* is also reproducible run-to-run. On a heterogeneous pool
//! every design sharing a feature width must implement the same model for
//! predictions to stay shard-independent; `tests/serve_determinism.rs`
//! and `tests/hetero_determinism.rs` lock in bit-identical predictions
//! and class sums across shard counts, policies, threads and backends.

use crate::dispatch::{DispatchPolicy, Dispatcher, ShardLoad, ShardProfile};
use crate::error::ServeError;
use crate::fault::{
    FaultPlan, FaultState, SliceAction, SliceFaults, SEEDED_FAULTS_PER_SHARD,
    SEEDED_HORIZON_REQUESTS,
};
use crate::health::{HealthTracker, HealthTransition, ShardHealth};
use crate::queue::{Request, RequestQueue, DEFAULT_QUEUE_DEPTH};
use crate::report::{ShardStats, ThroughputReport};
use crate::spec::ShardSpec;
use matador_obs::{Counter, Histogram, Registry};
use matador_sim::{
    CompiledAccelerator, EngineBackend, SimEngine, SimError, SimResult, TurboEngine, TurboProgram,
};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use tsetlin::bits::BitVec;

/// A shard's per-flush mean observed II beyond this multiple of the
/// pool's modeled II is treated as a soft fault (`"ii_outlier"`) — the
/// shard is degraded, not quarantined. Conservative: heterogeneous
/// pools legitimately mix IIs a factor of ~2 apart.
const II_OUTLIER_FACTOR: u64 = 4;

/// Configuration of a serving runtime instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeOptions {
    /// Engine shards in the pool (≥ 1). Ignored on the heterogeneous
    /// path, where the [`ShardSpec`] list sets the shard count.
    pub shards: usize,
    /// Request→shard assignment policy.
    pub policy: DispatchPolicy,
    /// Bounded request-queue depth (≥ 1); submissions beyond it fail with
    /// [`ServeError::QueueFull`].
    pub queue_depth: usize,
    /// Whether shard engines model the two-stage (pipelined) class sum.
    /// Ignored on the heterogeneous path, where each [`ShardSpec`]
    /// carries its own design's choice.
    pub pipelined_sum: bool,
    /// Whether predictions carry the class sums behind each winner.
    pub capture_class_sums: bool,
    /// Worker threads for shard execution (`None` = the
    /// `MATADOR_THREADS`/available-parallelism default).
    pub threads: Option<usize>,
    /// Whether a homogeneous all-turbo pool may consolidate a small flush
    /// onto a single shard. Every turbo shard runs the same immutable
    /// instruction tape, so when a flush carries less work than one chunk
    /// threshold per shard (see
    /// [`matador_sim::configured_chunk_threshold`]), spreading it only
    /// buys per-shard dispatch overhead — the pool sends the whole flush
    /// to the least-loaded shard instead. Winners, class sums and
    /// latencies are unaffected (every shard computes identical results);
    /// only the shard *assignment* changes. Disable to force the
    /// configured dispatch policy even for tiny flushes (e.g. when
    /// comparing shard assignments against a cycle-accurate pool).
    pub consolidate: bool,
    /// Chunk-fan-out threshold override for turbo shards (tape-work cost
    /// below which a batch stays serial; see
    /// [`matador_sim::TurboProgram::plan_workers`]). `None` reads the
    /// `MATADOR_CHUNK_THRESHOLD` environment default at pool
    /// construction. Purely a performance knob — results are bit-identical
    /// at any value.
    pub chunk_threshold: Option<u64>,
    /// Execution engine behind each shard. [`EngineBackend::Turbo`]
    /// produces bit-identical predictions, class sums and cycle stamps
    /// via bit-sliced evaluation and analytic timing — the serving fast
    /// path. Ignored on the heterogeneous path, where each [`ShardSpec`]
    /// picks its own backend.
    pub backend: EngineBackend,
    /// `Some(seed)` arms seeded chaos injection: the pool is built in
    /// resilient mode with [`FaultPlan::seeded`]`(seed, shards,`
    /// [`SEEDED_HORIZON_REQUESTS`]`, `[`SEEDED_FAULTS_PER_SHARD`]`)`
    /// installed — the options-only way to switch on the fault-tolerant
    /// serving path. For an explicit schedule (or resilient mode without
    /// injected faults) use [`ShardPool::with_fault_plan`] instead.
    /// `None` (the default) keeps the classic fail-fast pool.
    #[serde(default)]
    pub fault_seed: Option<u64>,
}

impl ServeOptions {
    /// Options for a pool of `shards` engines with the defaults: round-robin
    /// dispatch, a [`DEFAULT_QUEUE_DEPTH`]-deep queue, plain class sums,
    /// cycle-accurate engines.
    pub fn new(shards: usize) -> Self {
        ServeOptions {
            shards,
            policy: DispatchPolicy::RoundRobin,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            pipelined_sum: false,
            capture_class_sums: false,
            threads: None,
            consolidate: true,
            chunk_threshold: None,
            backend: EngineBackend::CycleAccurate,
            fault_seed: None,
        }
    }

    /// [`ServeOptions::new`] on the [`EngineBackend::Turbo`] backend.
    pub fn turbo(shards: usize) -> Self {
        ServeOptions {
            backend: EngineBackend::Turbo,
            ..ServeOptions::new(shards)
        }
    }

    /// Rejects degenerate options — the single source of truth for both
    /// [`ShardPool::with_options`] and [`crate::ServeSession::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ZeroShards`] or [`ServeError::ZeroQueueDepth`].
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.shards == 0 {
            return Err(ServeError::ZeroShards);
        }
        self.validate_queue_depth()
    }

    /// The spec-independent half of [`ServeOptions::validate`]: the
    /// heterogeneous constructors check shard count through
    /// [`ShardSpec::validate_all`] (the `shards` field is superseded by
    /// the spec list) but share this queue-depth check.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ZeroQueueDepth`].
    pub fn validate_queue_depth(&self) -> Result<(), ServeError> {
        if self.queue_depth == 0 {
            return Err(ServeError::ZeroQueueDepth);
        }
        Ok(())
    }
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions::new(1)
    }
}

/// Per-shard serving statistics over a pool's lifetime, exposed by
/// [`ShardPool::shard_stats`]. Complements [`crate::ShardStats`] (the
/// engine stream view — cycles, transfers, stalls) with the *dispatch*
/// view: how much work the pool routed to each shard and how fast that
/// shard turned results around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolShardStats {
    /// Shard index.
    pub shard: usize,
    /// Bus beats of work the pool dispatched to this shard (each request
    /// charges its design's packets-per-datapoint).
    pub queued_beats: u64,
    /// Sum of observed result-to-result gaps (cycles) on this shard —
    /// the numerator of its observed steady-state II.
    pub ii_cycles: u64,
    /// Number of gaps behind `ii_cycles`.
    pub ii_samples: u64,
    /// Flushes in which this shard executed at least one request.
    pub flushes_served: u64,
}

/// Pool-level metric handles, resolved once at construction so the flush
/// path never touches the registry lock. Pure sinks: nothing in the pool
/// reads them back, so recording cannot perturb dispatch determinism.
#[derive(Debug, Clone)]
struct PoolMetrics {
    /// `matador_pool_flushes_total` — non-empty flushes executed.
    flushes: Arc<Counter>,
    /// `matador_pool_flushes_consolidated_total` — flushes a multi-shard
    /// pool ran whole on a single shard (the consolidation fast path).
    consolidated: Arc<Counter>,
    /// `matador_pool_dispatched_total{policy=...}` — requests planned by
    /// the configured dispatch policy (the spread path; consolidated
    /// flushes bypass the planner and are counted above instead).
    dispatched: Arc<Counter>,
    /// `matador_pool_retries_total` — redirect rounds a resilient flush
    /// ran after shard failures (one per re-planning pass, not per
    /// request).
    retries: Arc<Counter>,
    /// `matador_pool_redirects_total` — requests re-dispatched from a
    /// failed shard to a surviving one.
    redirects: Arc<Counter>,
}

impl PoolMetrics {
    fn resolve(policy: DispatchPolicy) -> Self {
        let registry = Registry::global();
        PoolMetrics {
            flushes: registry.counter(
                "matador_pool_flushes_total",
                "",
                "Non-empty flushes executed by the shard pool.",
            ),
            consolidated: registry.counter(
                "matador_pool_flushes_consolidated_total",
                "",
                "Flushes a multi-shard pool consolidated onto a single shard.",
            ),
            dispatched: registry.counter(
                "matador_pool_dispatched_total",
                &format!("policy=\"{}\"", policy.as_label()),
                "Requests planned by the configured dispatch policy.",
            ),
            retries: registry.counter(
                "matador_pool_retries_total",
                "",
                "Redirect rounds run after shard failures.",
            ),
            redirects: registry.counter(
                "matador_pool_redirects_total",
                "",
                "Requests re-dispatched from a failed shard to a surviving one.",
            ),
        }
    }
}

/// Bumps `matador_faults_injected_total{kind=...}`. Resolved lazily:
/// only ever reached when a fault plan actually fires, never on the
/// fault-free hot path.
fn count_fault_injected(kind: &'static str) {
    Registry::global()
        .counter(
            "matador_faults_injected_total",
            &format!("kind=\"{kind}\""),
            "Faults injected by the active fault plan, by kind.",
        )
        .inc();
}

/// Bumps `matador_faults_detected_total{kind=...}` — faults the pool
/// *observed* (injected or genuine: `engine_error` counts here without
/// ever being injected).
fn count_fault_detected(kind: &'static str) {
    Registry::global()
        .counter(
            "matador_faults_detected_total",
            &format!("kind=\"{kind}\""),
            "Shard faults detected by the pool, by kind.",
        )
        .inc();
}

/// Per-shard metric handles, registered at pool construction with a
/// `shard="N"` label.
#[derive(Debug, Clone)]
struct ShardMetrics {
    /// `matador_pool_shard_requests_total{shard=...}`.
    requests: Arc<Counter>,
    /// `matador_pool_shard_queued_beats_total{shard=...}`.
    queued_beats: Arc<Counter>,
    /// `matador_pool_shard_ii_cycles{shard=...}` — one sample per flush:
    /// the shard's mean observed result-to-result gap over that flush.
    ii_cycles: Arc<Histogram>,
}

impl ShardMetrics {
    fn resolve(shard: usize) -> Self {
        let registry = Registry::global();
        let labels = format!("shard=\"{shard}\"");
        ShardMetrics {
            requests: registry.counter(
                "matador_pool_shard_requests_total",
                &labels,
                "Requests executed, by shard.",
            ),
            queued_beats: registry.counter(
                "matador_pool_shard_queued_beats_total",
                &labels,
                "Bus beats of work dispatched, by shard.",
            ),
            ii_cycles: registry.histogram(
                "matador_pool_shard_ii_cycles",
                &labels,
                "Observed steady-state II per flush (cycles/result), by shard.",
            ),
        }
    }
}

/// One completed inference.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prediction {
    /// Id assigned at submission (monotonic per pool; a
    /// [`crate::ServeSession`] rebases ids to stay monotonic per session).
    pub request: u64,
    /// Winning class index.
    pub winner: usize,
    /// Shard that executed the request.
    pub shard: usize,
    /// First packet acceptance → `result_valid`, inclusive, on that shard.
    pub latency_cycles: u64,
    /// Shard-local cycle at which `result_valid` asserted (cumulative
    /// over the shard's lifetime, not per flush). Together with `shard`
    /// this orders completions *within* a flush deterministically — the
    /// key the front-end's reorder stage sequences replies by.
    pub completed_at_cycle: u64,
    /// Class sums behind the winner, when
    /// [`ServeOptions::capture_class_sums`] is set.
    pub class_sums: Option<Vec<i32>>,
}

/// A pool of engine shards serving batched requests.
///
/// # Lifetime and memory
///
/// A pool retains per-request latency samples and each engine's
/// monitor/result/sum logs for its whole lifetime — memory grows with the
/// total requests served, which is what makes the cumulative
/// [`ShardPool::report`] possible. Scope a pool to a bounded serving
/// window and roll its report up (exactly what [`crate::ServeSession`]
/// does per batch) rather than holding one pool open indefinitely.
///
/// # Examples
///
/// ```
/// use matador_logic::cube::{Cube, Lit};
/// use matador_logic::dag::Sharing;
/// use matador_serve::{ServeOptions, ShardPool};
/// use matador_sim::{AccelShape, CompiledAccelerator};
/// use tsetlin::bits::BitVec;
///
/// let shape = AccelShape { bus_width: 4, features: 4, classes: 2, clauses_per_class: 2 };
/// let cubes = vec![vec![
///     Cube::from_lits([Lit::pos(0)]),
///     Cube::one(),
///     Cube::from_lits([Lit::pos(1)]),
///     Cube::one(),
/// ]];
/// let accel = CompiledAccelerator::from_window_cubes(shape, &cubes, Sharing::Enabled);
/// let mut pool = ShardPool::with_options(&accel, ServeOptions::new(2)).expect("valid");
/// let batch = vec![BitVec::from_indices(4, &[0]); 6];
/// let predictions = pool.serve(&batch).expect("drains");
/// assert_eq!(predictions.len(), 6);
/// assert!(predictions.iter().all(|p| p.winner == 0));
/// assert_eq!(pool.report().datapoints, 6);
/// ```
#[derive(Debug)]
pub struct ShardPool<'a> {
    /// One compiled design per shard (all identical on the homogeneous
    /// path).
    designs: Vec<&'a CompiledAccelerator>,
    /// Per-shard static dispatch weights (all 1 on the homogeneous path).
    weights: Vec<u32>,
    engines: Vec<PoolEngine<'a>>,
    dispatcher: Dispatcher,
    queue: RequestQueue,
    capture_sums: bool,
    threads: Option<usize>,
    /// Distinct feature widths the pool admits, ascending.
    widths: Vec<usize>,
    /// Whether each shard models the two-stage (pipelined) class sum —
    /// one extra cycle of result latency on that shard.
    pipelined: Vec<bool>,
    /// Per-request latency samples, pool lifetime.
    latencies: Vec<u64>,
    /// Cost of one lane word on the shared turbo tape — `Some` exactly
    /// when every shard runs the same compiled [`TurboProgram`]
    /// (homogeneous turbo pools), which is what makes shard assignment
    /// result-invisible and consolidation sound.
    shared_chunk_cost: Option<u64>,
    /// Chunk-parallelism cost threshold, resolved once at construction.
    chunk_threshold: u64,
    /// Whether small flushes may consolidate onto one shard
    /// ([`ServeOptions::consolidate`]).
    consolidate: bool,
    /// Pool-level metric handles (resolved once at construction).
    metrics: PoolMetrics,
    /// Per-shard metric handles, shard-index order.
    shard_metrics: Vec<ShardMetrics>,
    /// Bus beats dispatched to each shard, pool lifetime — the
    /// [`PoolShardStats::queued_beats`] source.
    shard_queued_beats: Vec<u64>,
    /// Flushes in which each shard executed at least one request.
    shard_flushes: Vec<u64>,
    /// Execution units: each entry lists the member shards that must
    /// jointly execute a request. Standalone shards form singleton
    /// units; a partition group's members share one unit (members in
    /// shard order, units ordered by lead = lowest member index). The
    /// dispatcher plans over units, so a partitioned design is one
    /// logical executor however many shards its slices occupy.
    units: Vec<Vec<usize>>,
    /// Whether any shard belongs to a partition group — routes every
    /// flush through [`ShardPool::flush_partitioned`], which merges the
    /// members' partial class sums into each final winner.
    grouped: bool,
    /// Runtime state of the installed [`FaultPlan`] (disarmed and free
    /// on pools without one).
    faults: FaultState,
    /// Per-shard circuit breaker. Present on every pool; only the
    /// resilient flush path ever records transitions, so a classic pool
    /// stays permanently all-healthy.
    health: HealthTracker,
    /// Whether shard failures are contained, quarantined and redirected
    /// ([`ShardPool::with_fault_plan`]) instead of failing the flush
    /// ([`ServeError::Shard`], the classic fail-fast contract).
    resilient: bool,
}

/// One engine shard behind either execution backend. Both variants expose
/// the same result stream, cycle clock and stream statistics, so the pool
/// (and everything above it) is backend-agnostic. Engines are boxed: a
/// pool holds many, and both variants carry sizeable scratch state.
#[derive(Debug)]
enum PoolEngine<'a> {
    Cycle(Box<SimEngine<'a>>),
    Turbo(Box<TurboEngine>),
}

/// What one shard produced for its slice of a flush: classifications in
/// submission order, the class sums behind them, and each datapoint's
/// first-packet acceptance cycle.
struct ShardOutput {
    results: Vec<SimResult>,
    class_sums: Vec<Vec<i32>>,
    first_beats: Vec<u64>,
}

impl PoolEngine<'_> {
    /// Advances the shard clock by `n` dead cycles — the timing half of
    /// an injected stall or queue delay.
    fn inject_idle_cycles(&mut self, n: u64) {
        match self {
            PoolEngine::Cycle(e) => e.inject_idle_cycles(n),
            PoolEngine::Turbo(e) => e.inject_idle_cycles(n),
        }
    }

    fn load(&self) -> ShardLoad {
        match self {
            PoolEngine::Cycle(e) => ShardLoad {
                cycles: e.cycle(),
                ii_cycles: e.observed_ii_cycles(),
                ii_samples: e.observed_ii_samples(),
            },
            PoolEngine::Turbo(e) => ShardLoad {
                cycles: e.cycle(),
                ii_cycles: e.observed_ii_cycles(),
                ii_samples: e.observed_ii_samples(),
            },
        }
    }

    fn stats(&self, shard: usize) -> ShardStats {
        match self {
            PoolEngine::Cycle(e) => ShardStats {
                shard,
                cycles: e.cycle(),
                datapoints: e.monitor().datapoints() as u64,
                transfers: e.stream_transfers(),
                stall_cycles: e.stream_stall_cycles(),
            },
            PoolEngine::Turbo(e) => ShardStats {
                shard,
                cycles: e.cycle(),
                datapoints: e.datapoints(),
                transfers: e.transfers(),
                stall_cycles: e.stall_cycles(),
            },
        }
    }

    /// Runs this shard's slice of a flush.
    fn run(&mut self, inputs: &[BitVec], beats_per_request: u64) -> Result<ShardOutput, SimError> {
        match self {
            PoolEngine::Cycle(e) => {
                let monitor_before = e.monitor().records().len();
                let sums_before = e.class_sums_log().len();
                let results = e.run_datapoints(inputs)?;
                let class_sums = e.class_sums_log()[sums_before..].to_vec();
                // A datapoint's beats transfer back-to-back before the
                // next datapoint's, so fixed-size chunks recover each
                // first-packet acceptance cycle from the monitor (ILA)
                // records.
                let first_beats = e.monitor().records()[monitor_before..]
                    .chunks(beats_per_request as usize)
                    .map(|c| c[0].cycle)
                    .collect();
                Ok(ShardOutput {
                    results,
                    class_sums,
                    first_beats,
                })
            }
            PoolEngine::Turbo(e) => {
                let first_beats = (0..inputs.len())
                    .map(|i| e.next_first_beat_cycle(i))
                    .collect();
                let sums_before = e.class_sums_log().len();
                let results = e.run_datapoints(inputs)?;
                let class_sums = e.class_sums_log()[sums_before..].to_vec();
                Ok(ShardOutput {
                    results,
                    class_sums,
                    first_beats,
                })
            }
        }
    }
}

/// How one shard's slice of a flush failed. `Engine` wraps a genuine
/// engine error; `Corrupted` is the parity check catching an injected
/// [`crate::FaultKind::CorruptSum`] — the results exist but must never
/// be served. A panicked slice produces neither: its outcome stays
/// unset (see [`ShardRun::outcome`]).
#[derive(Debug)]
enum SliceError {
    Engine(SimError),
    Corrupted,
}

/// One engine shard wrapped with its slice's fault directives — the
/// injection shim the flush path executes instead of the bare engine.
/// With clean directives it is a transparent pass-through to
/// [`PoolEngine::run`]: the fault-free path pays two branch tests.
struct FaultyEngine<'e, 'a, 'd> {
    engine: &'e mut PoolEngine<'a>,
    directives: &'d SliceFaults,
}

impl FaultyEngine<'_, '_, '_> {
    /// Runs the slice under its directives. An injected
    /// [`SliceAction::Panic`] raises a real panic *before* touching the
    /// engine — the worker dies exactly as a genuine bug would, and the
    /// shard clock stays consistent for the eventual recovery probe.
    fn run(
        &mut self,
        inputs: &[BitVec],
        beats_per_request: u64,
    ) -> Result<ShardOutput, SliceError> {
        if self.directives.action == SliceAction::Panic {
            panic!("injected fault: shard worker dies before accepting the slice");
        }
        if self.directives.pre_delay > 0 {
            self.engine.inject_idle_cycles(self.directives.pre_delay);
        }
        let output = self
            .engine
            .run(inputs, beats_per_request)
            .map_err(SliceError::Engine)?;
        if self.directives.action == SliceAction::Corrupt {
            return Err(SliceError::Corrupted);
        }
        Ok(output)
    }
}

/// One shard's slice of a flush, mutated on a worker thread.
struct ShardRun<'e, 'a> {
    engine: &'e mut PoolEngine<'a>,
    beats_per_request: u64,
    inputs: Vec<BitVec>,
    /// Fault directives for this slice, planned on the pool thread
    /// before workers spawn (clean outside resilient mode).
    directives: SliceFaults,
    /// `None` until the slice runs — and still `None` afterwards iff the
    /// worker panicked (injected or genuine), which is how the resilient
    /// reassembly detects a lost slice. Empty slices never run.
    outcome: Option<Result<ShardOutput, SliceError>>,
}

impl ShardRun<'_, '_> {
    /// Executes a non-empty slice under its fault directives. May panic
    /// (an injected [`SliceAction::Panic`], or a genuine engine bug);
    /// resilient callers contain that with `catch_unwind` /
    /// [`matador_par::try_par_map_mut_with`].
    fn execute(&mut self) {
        let mut faulty = FaultyEngine {
            engine: self.engine,
            directives: &self.directives,
        };
        self.outcome = Some(faulty.run(&self.inputs, self.beats_per_request));
    }
}

/// Pairs every engine with its slice of a flush: the assigned inputs
/// move in (each request is assigned exactly once, so no clone on the
/// serving hot path), the fault directives ride along, and the outcome
/// slot starts unset. Borrows only the engines — the pool's other
/// fields stay readable while the runs are alive.
fn build_runs<'e, 'a>(
    engines: &'e mut [PoolEngine<'a>],
    profiles: &[ShardProfile],
    work: &[Vec<usize>],
    request_inputs: &mut [Option<BitVec>],
    directives: Vec<SliceFaults>,
) -> Vec<ShardRun<'e, 'a>> {
    engines
        .iter_mut()
        .zip(profiles)
        .zip(work)
        .zip(directives)
        .map(|(((engine, profile), indices), directives)| ShardRun {
            engine,
            beats_per_request: profile.beats_per_request,
            inputs: indices
                .iter()
                .map(|&ri| {
                    request_inputs[ri]
                        .take()
                        .expect("every request is assigned to exactly one shard")
                })
                .collect(),
            directives,
            outcome: None,
        })
        .collect()
}

impl<'a> ShardPool<'a> {
    /// Creates a pool of `shards` engines with default options.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ZeroShards`] when `shards == 0`.
    pub fn new(accel: &'a CompiledAccelerator, shards: usize) -> Result<Self, ServeError> {
        Self::with_options(accel, ServeOptions::new(shards))
    }

    /// Creates a homogeneous pool — every shard runs `accel` — from
    /// explicit [`ServeOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ZeroShards`] or [`ServeError::ZeroQueueDepth`]
    /// on degenerate options.
    pub fn with_options(
        accel: &'a CompiledAccelerator,
        options: ServeOptions,
    ) -> Result<Self, ServeError> {
        options.validate()?;
        let queue = RequestQueue::new(options.queue_depth)?;
        // The turbo instruction tapes are immutable: compile them once
        // per pool and hand every shard a copy.
        let program = match options.backend {
            EngineBackend::CycleAccurate => None,
            EngineBackend::Turbo => Some(TurboProgram::compile(accel)),
        };
        // Turbo shards in an all-turbo pool run serially in flush() —
        // each one fans its slice out across the worker budget instead
        // (chunk parallelism composes better than shard parallelism for
        // identical tapes), so they inherit the pool's thread setting.
        let shared_chunk_cost = program.as_ref().map(TurboProgram::chunk_cost);
        let chunk_threshold = options
            .chunk_threshold
            .unwrap_or_else(matador_sim::configured_chunk_threshold);
        let engines = (0..options.shards)
            .map(|_| {
                Self::build_engine(
                    accel,
                    program.as_ref(),
                    options.pipelined_sum,
                    options.capture_class_sums,
                    options.threads,
                    chunk_threshold,
                )
            })
            .collect();
        let mut pool = ShardPool {
            designs: vec![accel; options.shards],
            weights: vec![1; options.shards],
            engines,
            dispatcher: Dispatcher::new(options.policy),
            queue,
            capture_sums: options.capture_class_sums,
            threads: options.threads,
            widths: vec![accel.shape().features],
            pipelined: vec![options.pipelined_sum; options.shards],
            latencies: Vec::new(),
            shared_chunk_cost,
            chunk_threshold,
            consolidate: options.consolidate,
            metrics: PoolMetrics::resolve(options.policy),
            shard_metrics: (0..options.shards).map(ShardMetrics::resolve).collect(),
            shard_queued_beats: vec![0; options.shards],
            shard_flushes: vec![0; options.shards],
            units: (0..options.shards).map(|s| vec![s]).collect(),
            grouped: false,
            faults: FaultState::new(&FaultPlan::none(), options.shards),
            health: HealthTracker::new(options.shards),
            resilient: false,
        };
        if let Some(seed) = options.fault_seed {
            pool.install_fault_plan(FaultPlan::seeded(
                seed,
                options.shards,
                SEEDED_HORIZON_REQUESTS,
                SEEDED_FAULTS_PER_SHARD,
            ));
        }
        Ok(pool)
    }

    /// Creates a homogeneous pool in **resilient mode** with `plan`
    /// installed: injected faults — and genuine shard failures — are
    /// contained per shard, fed into the health circuit breaker (see
    /// the [`crate::health`] module docs) and the affected requests are
    /// re-dispatched to surviving compatible shards, instead of failing
    /// the whole flush with [`ServeError::Shard`]. Replies stay
    /// bit-identical to the fault-free pool while at least one
    /// compatible shard survives; once none does, flushes fail with
    /// [`ServeError::NoHealthyShard`] / [`ServeError::ShardQuarantined`].
    /// Pass [`FaultPlan::none`] for resilient mode without injection.
    ///
    /// # Errors
    ///
    /// Exactly as [`ShardPool::with_options`].
    pub fn with_fault_plan(
        accel: &'a CompiledAccelerator,
        options: ServeOptions,
        plan: FaultPlan,
    ) -> Result<Self, ServeError> {
        let mut pool = Self::with_options(accel, options)?;
        pool.install_fault_plan(plan);
        Ok(pool)
    }

    /// [`ShardPool::with_fault_plan`] for a heterogeneous pool: one
    /// engine per [`ShardSpec`], resilient mode, `plan` installed.
    ///
    /// # Errors
    ///
    /// Exactly as [`ShardPool::heterogeneous`].
    pub fn heterogeneous_with_fault_plan(
        specs: &'a [ShardSpec],
        options: ServeOptions,
        plan: FaultPlan,
    ) -> Result<Self, ServeError> {
        let mut pool = Self::heterogeneous(specs, options)?;
        pool.install_fault_plan(plan);
        Ok(pool)
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultState::new(&plan, self.shards());
        self.resilient = true;
    }

    /// Creates a heterogeneous pool: one engine per [`ShardSpec`], each
    /// owning its spec's design, backend, pipelining and dispatch weight.
    /// The pool admits exactly the feature widths the specs cover;
    /// requests are routed only to shards whose width matches. `options`
    /// contributes the dispatch policy, queue depth, class-sum capture
    /// and worker-thread count — its `shards`, `backend` and
    /// `pipelined_sum` fields are superseded by the specs.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ZeroShards`] for an empty spec list,
    /// [`ServeError::ZeroWeight`] for a zero-weight spec and
    /// [`ServeError::ZeroQueueDepth`] for a zero queue depth.
    pub fn heterogeneous(
        specs: &'a [ShardSpec],
        options: ServeOptions,
    ) -> Result<Self, ServeError> {
        ShardSpec::validate_all(specs)?;
        let queue = RequestQueue::new(options.queue_depth)?;
        // Each turbo spec compiles its own instruction tape: every spec
        // owns its design, so there is no shared-design identity to
        // dedupe on. Replicating one design across many turbo shards is
        // the homogeneous path's job ([`ShardPool::with_options`]
        // compiles once) — the heterogeneous path optimizes for specs
        // that genuinely differ.
        // Heterogeneous shards execute under the pool's shard-level
        // fan-out, so turbo engines pin their intra-batch chunking to the
        // calling worker — shard- and chunk-level parallelism must not
        // multiply.
        let chunk_threshold = options
            .chunk_threshold
            .unwrap_or_else(matador_sim::configured_chunk_threshold);
        let engines = specs
            .iter()
            .map(|spec| {
                let program = match spec.backend {
                    EngineBackend::CycleAccurate => None,
                    EngineBackend::Turbo => Some(TurboProgram::compile(&spec.design)),
                };
                // Partition-group members always capture class sums
                // internally: the partitioned flush needs every member's
                // partial sums to merge the final winner, whether or not
                // the caller asked predictions to carry them.
                Self::build_engine(
                    &spec.design,
                    program.as_ref(),
                    spec.pipelined_sum,
                    options.capture_class_sums || spec.partition_group.is_some(),
                    Some(1),
                    chunk_threshold,
                )
            })
            .collect();
        let mut widths: Vec<usize> = specs.iter().map(ShardSpec::width).collect();
        widths.sort_unstable();
        widths.dedup();
        let mut pool = ShardPool {
            designs: specs.iter().map(|s| &s.design).collect(),
            weights: specs.iter().map(|s| s.weight).collect(),
            engines,
            dispatcher: Dispatcher::new(options.policy),
            queue,
            capture_sums: options.capture_class_sums,
            threads: options.threads,
            widths,
            pipelined: specs.iter().map(|s| s.pipelined_sum).collect(),
            latencies: Vec::new(),
            shared_chunk_cost: None,
            chunk_threshold,
            consolidate: options.consolidate,
            metrics: PoolMetrics::resolve(options.policy),
            shard_metrics: (0..specs.len()).map(ShardMetrics::resolve).collect(),
            shard_queued_beats: vec![0; specs.len()],
            shard_flushes: vec![0; specs.len()],
            units: Self::units_from_specs(specs),
            grouped: specs.iter().any(|s| s.partition_group.is_some()),
            faults: FaultState::new(&FaultPlan::none(), specs.len()),
            health: HealthTracker::new(specs.len()),
            resilient: false,
        };
        if let Some(seed) = options.fault_seed {
            pool.install_fault_plan(FaultPlan::seeded(
                seed,
                specs.len(),
                SEEDED_HORIZON_REQUESTS,
                SEEDED_FAULTS_PER_SHARD,
            ));
        }
        Ok(pool)
    }

    fn build_engine(
        accel: &'a CompiledAccelerator,
        program: Option<&TurboProgram>,
        pipelined_sum: bool,
        capture_class_sums: bool,
        chunk_threads: Option<usize>,
        chunk_threshold: u64,
    ) -> PoolEngine<'a> {
        match program {
            None => {
                let mut engine = SimEngine::new(accel);
                engine.set_pipelined_sum(pipelined_sum);
                engine.set_capture_class_sums(capture_class_sums);
                PoolEngine::Cycle(Box::new(engine))
            }
            Some(program) => {
                let mut engine = TurboEngine::from_program(program.clone());
                engine.set_pipelined_sum(pipelined_sum);
                engine.set_capture_class_sums(capture_class_sums);
                engine.set_chunk_threads(chunk_threads);
                engine.set_chunk_threshold(chunk_threshold);
                PoolEngine::Turbo(Box::new(engine))
            }
        }
    }

    /// Execution units from a spec list: a singleton unit per standalone
    /// shard, one multi-member unit per partition group. Members are in
    /// shard order; units are ordered by their lead (lowest) member, so
    /// the layout is a deterministic function of the spec list alone.
    fn units_from_specs(specs: &[ShardSpec]) -> Vec<Vec<usize>> {
        let mut groups: std::collections::BTreeMap<u32, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (shard, spec) in specs.iter().enumerate() {
            if let Some(group) = spec.partition_group {
                groups.entry(group).or_default().push(shard);
            }
        }
        let mut units = Vec::new();
        for (shard, spec) in specs.iter().enumerate() {
            match spec.partition_group {
                None => units.push(vec![shard]),
                Some(group) => {
                    let members = &groups[&group];
                    if members[0] == shard {
                        units.push(members.clone());
                    }
                }
            }
        }
        units
    }

    /// Execution units behind dispatch: each entry lists the member
    /// shards that jointly execute a request (singletons for standalone
    /// shards, the whole member set for a partition group).
    pub fn units(&self) -> &[Vec<usize>] {
        &self.units
    }

    /// Units whose members are all currently eligible for traffic — the
    /// unit-level sibling of [`ShardPool::healthy_shards`]: a partition
    /// group with even one quarantined member cannot serve (its partial
    /// sums would be incomplete), so it counts as ineligible whole.
    fn eligible_units(&self) -> usize {
        self.units
            .iter()
            .filter(|members| members.iter().all(|&m| self.health.eligible(m)))
            .count()
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.engines.len()
    }

    /// The compiled design shard `shard` executes.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn design(&self, shard: usize) -> &'a CompiledAccelerator {
        self.designs[shard]
    }

    /// Distinct feature widths the pool admits, ascending.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// The active dispatch policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.dispatcher.policy()
    }

    /// The admission queue (pending counts, backpressure counters).
    pub fn queue(&self) -> &RequestQueue {
        &self.queue
    }

    /// Per-request latency samples collected so far (flush order).
    pub fn latencies(&self) -> &[u64] {
        &self.latencies
    }

    /// Per-shard serving statistics over the pool's lifetime, shard-index
    /// order: bus beats dispatched, observed result-to-result gap sums
    /// and sample counts (the shard's observed steady-state II is
    /// `ii_cycles / ii_samples`), and the number of flushes the shard
    /// actually executed work in. Unlike the global metrics registry,
    /// these are plain per-pool fields — always collected, regardless of
    /// whether metrics recording is enabled.
    pub fn shard_stats(&self) -> Vec<PoolShardStats> {
        self.engines
            .iter()
            .enumerate()
            .map(|(shard, engine)| {
                let load = engine.load();
                PoolShardStats {
                    shard,
                    queued_beats: self.shard_queued_beats[shard],
                    ii_cycles: load.ii_cycles,
                    ii_samples: load.ii_samples,
                    flushes_served: self.shard_flushes[shard],
                }
            })
            .collect()
    }

    /// Books one shard's slice of a completed flush: lifetime tracking
    /// for [`ShardPool::shard_stats`] plus the per-shard registry
    /// metrics. `ii_before` is the shard's (gap-cycles, gap-samples)
    /// snapshot from before the slice ran; the delta is this flush's
    /// observed-II contribution.
    fn note_shard_work(
        &mut self,
        shard: usize,
        requests: usize,
        beats_per_request: u64,
        ii_before: (u64, u64),
    ) {
        let beats = beats_per_request * requests as u64;
        self.shard_queued_beats[shard] += beats;
        self.shard_flushes[shard] += 1;
        let m = &self.shard_metrics[shard];
        m.requests.add(requests as u64);
        m.queued_beats.add(beats);
        let load = self.engines[shard].load();
        let (cycles, samples) = (load.ii_cycles - ii_before.0, load.ii_samples - ii_before.1);
        if samples > 0 {
            m.ii_cycles.record(cycles.div_ceil(samples));
        }
    }

    /// Each shard's cumulative engine cycle count, shard-index order —
    /// the time base [`Prediction::completed_at_cycle`] stamps live on.
    /// A snapshot taken before a flush turns those stamps into per-flush
    /// completion offsets, which is how the front-end maps shard-local
    /// cycles onto its own clock.
    pub fn shard_cycles(&self) -> Vec<u64> {
        self.engines.iter().map(|e| e.load().cycles).collect()
    }

    /// Whether dispatch may route to `shard` right now: every state but
    /// quarantined. The health-aware accessors below fall back to the
    /// whole pool when *no* shard is eligible, so their values stay
    /// defined (admission has already rejected new work by then).
    fn shard_usable(&self, shard: usize) -> bool {
        self.health.eligible(shard) || self.health.eligible_shards() == 0
    }

    /// The pool's minimum possible request latency in cycles: the fastest
    /// *healthy* shard's first-packet→result time for a lone request on
    /// an idle engine (`P` packet beats + 3 fixed stages, +1 when that
    /// shard's class sum is pipelined). No admission schedule can deliver
    /// a reply sooner, so a deadline inside this floor is unmeetable by
    /// construction. Quarantined shards don't count: under brownout the
    /// floor honestly reflects surviving capacity (and rises if the
    /// fastest shard is the one that died).
    pub fn latency_floor_cycles(&self) -> u64 {
        self.designs
            .iter()
            .zip(&self.pipelined)
            .enumerate()
            .filter(|&(shard, _)| self.shard_usable(shard))
            .map(|(_, (design, &pipelined))| {
                design.shape().num_packets() as u64 + 3 + u64::from(pipelined)
            })
            .min()
            .expect("a pool always has at least one shard")
    }

    /// Modeled steady-state cycles per result on one *healthy* shard:
    /// the pooled observed result-to-result gap when any eligible shard
    /// has history, else the bandwidth-bound fallback (the widest
    /// eligible design's beats per datapoint — a deliberately
    /// conservative cold-start estimate). This is the drain model behind
    /// deadline-aware batch coalescing; quarantined shards' history is
    /// excluded so brownout drain estimates track surviving capacity.
    pub fn modeled_ii_cycles(&self) -> u64 {
        let (cycles, samples) = self
            .engines
            .iter()
            .enumerate()
            .filter(|&(shard, _)| self.shard_usable(shard))
            .map(|(_, e)| e.load())
            .fold((0u64, 0u64), |(c, n), load| {
                (c + load.ii_cycles, n + load.ii_samples)
            });
        if samples > 0 {
            cycles.div_ceil(samples)
        } else {
            self.designs
                .iter()
                .enumerate()
                .filter(|&(shard, _)| self.shard_usable(shard))
                .map(|(_, d)| d.shape().num_packets() as u64)
                .max()
                .expect("a pool always has at least one shard")
        }
    }

    /// Shards a flush of `pending` requests would actually execute on:
    /// 1 when the pool's flush-consolidation heuristic would run the
    /// whole flush on a single shard, the count of *healthy* shards
    /// otherwise (never 0 — with everything quarantined the estimate
    /// degrades to serial capacity rather than dividing by zero). The
    /// front-end's drain model divides by this, not the raw shard
    /// count — a consolidated flush drains serially, a browned-out pool
    /// drains on what survives, and pretending otherwise would fire
    /// deadline-pressure flushes far too late.
    pub fn flush_spread(&self, pending: usize) -> usize {
        if pending > 0 && self.single_executor(pending).is_some() {
            1
        } else if self.grouped {
            // A partition group drains as one executor: its members run
            // the same slice concurrently, so the spread is the count of
            // fully-eligible *units*, not of member shards.
            self.eligible_units().max(1)
        } else {
            self.health.eligible_shards().max(1)
        }
    }

    /// Bus beats one datapoint of `width` features costs on the cheapest
    /// compatible shard — the unit the front-end's fair queueing charges
    /// per request. Falls back to 1 for widths the pool does not admit
    /// (admission rejects those before any costing happens).
    pub fn beats_for_width(&self, width: usize) -> u64 {
        self.designs
            .iter()
            .filter(|d| d.shape().features == width)
            .map(|d| d.shape().num_packets() as u64)
            .min()
            .unwrap_or(1)
    }

    /// Checks a datapoint width against the pool's admitted widths.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WidthMismatch`] (single-width pool) or
    /// [`ServeError::NoCompatibleShard`] (mixed pool) for a width no
    /// shard accepts.
    pub fn check_width(&self, got: usize) -> Result<(), ServeError> {
        if self.widths.binary_search(&got).is_ok() {
            return Ok(());
        }
        // A single-width pool keeps the precise single-design diagnostic;
        // a mixed pool reports the whole admission set.
        if let [expected] = self.widths[..] {
            Err(ServeError::WidthMismatch { expected, got })
        } else {
            Err(ServeError::NoCompatibleShard {
                got,
                widths: self.widths.clone(),
            })
        }
    }

    /// Checks that at least one shard serving `width` is currently
    /// eligible for traffic (not quarantined). Trivially `Ok` on a
    /// classic (non-resilient) pool and whenever every shard is healthy
    /// — the check costs two loads on the fault-free path.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShardQuarantined`] when exactly one shard
    /// serves the width (the precise single-shard diagnostic) and
    /// [`ServeError::NoHealthyShard`] when several do but every one of
    /// them is quarantined. A width no shard serves at all also reports
    /// [`ServeError::NoHealthyShard`] — call [`ShardPool::check_width`]
    /// first for the admission-grade diagnostics.
    pub fn check_healthy(&self, width: usize) -> Result<(), ServeError> {
        if !self.resilient || self.health.all_healthy() {
            return Ok(());
        }
        if self.grouped {
            // Unit granularity: a partition group serves only when
            // *every* member is eligible — a lone quarantined member
            // makes its whole group's partial sums unmergeable.
            let mut compatible = 0usize;
            let mut blocked = 0usize;
            for members in &self.units {
                if self.designs[members[0]].shape().features != width {
                    continue;
                }
                match members.iter().find(|&&m| !self.health.eligible(m)) {
                    None => return Ok(()),
                    Some(&m) => {
                        compatible += 1;
                        blocked = m;
                    }
                }
            }
            return if compatible == 1 {
                Err(ServeError::ShardQuarantined { shard: blocked })
            } else {
                Err(ServeError::NoHealthyShard { width })
            };
        }
        let mut compatible = 0usize;
        let mut last = 0usize;
        for (shard, design) in self.designs.iter().enumerate() {
            if design.shape().features == width {
                if self.health.eligible(shard) {
                    return Ok(());
                }
                compatible += 1;
                last = shard;
            }
        }
        if compatible == 1 {
            Err(ServeError::ShardQuarantined { shard: last })
        } else {
            Err(ServeError::NoHealthyShard { width })
        }
    }

    /// Current health state of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_health(&self, shard: usize) -> ShardHealth {
        self.health.state(shard)
    }

    /// Current health state of every shard, shard-index order.
    pub fn health_states(&self) -> &[ShardHealth] {
        self.health.states()
    }

    /// The health transition log, oldest first — every circuit-breaker
    /// edge with its cause and flush number. Deterministic: same fault
    /// plan + same request stream ⇒ same log at any thread count.
    pub fn health_log(&self) -> &[HealthTransition] {
        self.health.log()
    }

    /// Number of shards currently eligible for traffic.
    pub fn healthy_shards(&self) -> usize {
        self.health.eligible_shards()
    }

    /// Whether the pool contains and redirects shard failures
    /// (constructed via [`ShardPool::with_fault_plan`], armed via
    /// [`ServeOptions::fault_seed`], or switched by an operator
    /// [`ShardPool::quarantine_shard`]).
    pub fn resilient(&self) -> bool {
        self.resilient
    }

    /// Operator override: quarantine `shard` immediately (e.g. a
    /// planned drain), switching the pool into resilient mode if it was
    /// not already — a classic pool has no machinery to honor the
    /// quarantine otherwise. The shard probes its way back through the
    /// normal circuit-breaker cooldown.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn quarantine_shard(&mut self, shard: usize) {
        assert!(shard < self.shards(), "shard {shard} out of range");
        self.resilient = true;
        self.health.force_quarantine(shard);
    }

    /// Admits one request into the bounded queue, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WidthMismatch`] for a datapoint that does not
    /// match a single-width pool's design,
    /// [`ServeError::NoCompatibleShard`] when no shard of a mixed pool
    /// accepts the width, and [`ServeError::QueueFull`] when the depth
    /// bound is reached (typed backpressure — flush and retry).
    pub fn submit(&mut self, input: &BitVec) -> Result<u64, ServeError> {
        self.check_width(input.len())?;
        self.queue.push(input.clone())
    }

    /// Dispatches every pending request over the shard pool (requests go
    /// only to shards whose design accepts their width), runs the shard
    /// engines (in parallel on up to `MATADOR_THREADS` workers) and
    /// returns predictions in submission order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Shard`] if a shard's engine fails to drain;
    /// the lowest failing shard index is reported. A hang is a toolflow
    /// bug, not a recoverable condition: the failed flush's requests are
    /// dropped (including any classified by surviving shards), no latency
    /// samples are recorded for it, and surviving shards' cumulative
    /// engine/monitor counters remain visible in [`ShardPool::report`].
    pub fn flush(&mut self) -> Result<Vec<Prediction>, ServeError> {
        let requests = self.queue.drain();
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        // Partition groups first: their flushes plan over units and
        // merge member class sums, which none of the paths below do.
        if self.grouped {
            if self.resilient {
                self.health.begin_flush();
            }
            return self.flush_partitioned(requests);
        }
        if self.resilient {
            // Advance quarantine cooldowns (Quarantined → Probing)
            // before anything is planned, so half-open probes ride
            // ordinary traffic this flush.
            self.health.begin_flush();
            if let Some(shard) = self.single_executor(requests.len()) {
                return self.flush_to_shard_resilient(shard, requests);
            }
            return self.flush_resilient(requests);
        }
        // Single-executor fast path: a one-shard pool, or a small flush
        // on a homogeneous turbo pool (consolidation — every shard runs
        // the same tape, so assignment is result-invisible and spreading
        // work that is below one chunk threshold per shard only buys
        // dispatch overhead). Skips planning and reassembly entirely.
        if let Some(shard) = self.single_executor(requests.len()) {
            return self.flush_to_shard(shard, requests);
        }
        self.metrics.flushes.inc();
        self.metrics.dispatched.add(requests.len() as u64);
        let profiles = self.shard_profiles();
        let request_widths: Vec<usize> = requests.iter().map(|r| r.input.len()).collect();
        let assignment = self.dispatcher.plan_profiles(&profiles, &request_widths);

        // Per-shard work lists; order within a shard = submission order.
        let mut work: Vec<Vec<usize>> = vec![Vec::new(); self.engines.len()];
        for (ri, &s) in assignment.iter().enumerate() {
            work[s].push(ri);
        }

        // Move the drained inputs into their shard's work list (each
        // request is assigned exactly once, so no clone is needed on the
        // serving hot path); ids stay behind for result reassembly.
        let request_ids: Vec<u64> = requests.iter().map(|r| r.id).collect();
        let mut request_inputs: Vec<Option<BitVec>> =
            requests.into_iter().map(|r| Some(r.input)).collect();
        let directives: Vec<SliceFaults> = vec![SliceFaults::clean(); self.engines.len()];
        let serial = self.shared_chunk_cost.is_some();
        let threads = self.threads.unwrap_or_else(matador_par::configured_threads);
        let mut runs = build_runs(
            &mut self.engines,
            &profiles,
            &work,
            &mut request_inputs,
            directives,
        );
        Self::execute_runs(serial, threads, self.resilient, &mut runs);

        // Reassemble into submission order, surfacing the lowest failing
        // shard as a typed error.
        let mut slots: Vec<Option<Prediction>> = vec![None; request_ids.len()];
        for (shard, run) in runs.into_iter().enumerate() {
            let Some(outcome) = run.outcome else {
                debug_assert!(work[shard].is_empty());
                continue;
            };
            let output = match outcome {
                Ok(output) => output,
                Err(SliceError::Engine(error)) => return Err(ServeError::Shard { shard, error }),
                Err(SliceError::Corrupted) => {
                    unreachable!("corruption faults require a fault plan (resilient mode)")
                }
            };
            debug_assert_eq!(output.results.len(), work[shard].len());
            for (j, &ri) in work[shard].iter().enumerate() {
                let latency = output.results[j].cycle - output.first_beats[j] + 1;
                slots[ri] = Some(Prediction {
                    request: request_ids[ri],
                    winner: output.results[j].winner,
                    shard,
                    latency_cycles: latency,
                    completed_at_cycle: output.results[j].cycle,
                    class_sums: self.capture_sums.then(|| output.class_sums[j].clone()),
                });
            }
        }
        let predictions: Vec<Prediction> = slots
            .into_iter()
            .map(|p| p.expect("every request was assigned to exactly one shard"))
            .collect();
        self.latencies
            .extend(predictions.iter().map(|p| p.latency_cycles));
        for (shard, indices) in work.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let profile = profiles[shard];
            self.note_shard_work(
                shard,
                indices.len(),
                profile.beats_per_request,
                (profile.load.ii_cycles, profile.load.ii_samples),
            );
        }
        Ok(predictions)
    }

    /// Profile snapshots for the width-aware planner: cumulative cycles
    /// (every flush drains its engines completely, so cumulative cycles
    /// are exactly what distinguishes shards *across* flushes),
    /// observed-II statistics for latency-aware planning, and each
    /// shard's admitted width and per-datapoint beat cost.
    fn shard_profiles(&self) -> Vec<ShardProfile> {
        self.engines
            .iter()
            .zip(&self.designs)
            .zip(&self.weights)
            .map(|((engine, design), &weight)| ShardProfile {
                load: engine.load(),
                width: design.shape().features,
                beats_per_request: design.shape().num_packets() as u64,
                weight,
            })
            .collect()
    }

    /// Executes a flush's shard runs.
    ///
    /// All-turbo pools run their shards serially on the caller: each
    /// shard's engine fans its own slice out across the full worker
    /// budget (intra-shard chunk parallelism), which beats one thread
    /// per shard for identical tapes and never oversubscribes. Pools
    /// with cycle-accurate shards keep the shard-level fan-out — a
    /// cycle engine is single-threaded by nature, and any turbo engines
    /// beside it were pinned to their worker at construction.
    ///
    /// In resilient mode worker panics (injected or genuine) are
    /// contained — on the caller via `catch_unwind`, across workers via
    /// [`matador_par::try_par_map_mut_with`] — and show up as slices
    /// whose outcome was never set. A classic pool propagates panics
    /// unchanged.
    fn execute_runs(serial: bool, threads: usize, resilient: bool, runs: &mut [ShardRun<'_, 'a>]) {
        if serial {
            for run in runs {
                if run.inputs.is_empty() {
                    continue;
                }
                if resilient {
                    let _ = catch_unwind(AssertUnwindSafe(|| run.execute()));
                } else {
                    run.execute();
                }
            }
        } else if resilient {
            // The panic (if any) is already recorded as the slice's
            // unset outcome; which one surfaced first is irrelevant.
            let _ = matador_par::try_par_map_mut_with(threads, runs, |_, run| {
                if !run.inputs.is_empty() {
                    run.execute();
                }
            });
        } else {
            matador_par::par_map_mut_with(threads, runs, |_, run| {
                if !run.inputs.is_empty() {
                    run.execute();
                }
            });
        }
    }

    /// The resilient spread flush: plan over eligible shards, execute
    /// with fault injection and panic containment, then re-dispatch the
    /// slices lost to hard faults onto surviving compatible shards until
    /// everything is served — or no healthy capacity remains.
    ///
    /// Termination: every round that loses a slice quarantines at least
    /// one previously-eligible shard (hard faults open its breaker, and
    /// breakers cannot half-open again mid-flush — cooldowns only
    /// advance in [`HealthTracker::begin_flush`]), so after at most
    /// `shards` rounds the flush either completes or fails typed.
    ///
    /// Correctness under chaos: a lost slice contributes *nothing* — a
    /// panicked worker never produced results and a corrupted slice is
    /// discarded whole — so every served reply was computed cleanly by
    /// some healthy shard, which is what keeps winners and class sums
    /// bit-identical to the fault-free run.
    fn flush_resilient(&mut self, requests: Vec<Request>) -> Result<Vec<Prediction>, ServeError> {
        self.metrics.flushes.inc();
        self.metrics.dispatched.add(requests.len() as u64);
        let request_ids: Vec<u64> = requests.iter().map(|r| r.id).collect();
        let request_widths: Vec<usize> = requests.iter().map(|r| r.input.len()).collect();
        let mut request_inputs: Vec<Option<BitVec>> =
            requests.into_iter().map(|r| Some(r.input)).collect();
        let mut slots: Vec<Option<Prediction>> = vec![None; request_ids.len()];
        let mut pending: Vec<usize> = (0..request_ids.len()).collect();
        let mut round = 0u64;
        while !pending.is_empty() {
            // No healthy capacity for some pending width ⇒ the flush
            // fails typed (its requests are dropped, exactly like the
            // classic [`ServeError::Shard`] contract).
            for &ri in &pending {
                self.check_healthy(request_widths[ri])?;
            }
            if round > 0 {
                self.metrics.retries.inc();
                self.metrics.redirects.add(pending.len() as u64);
            }
            round += 1;
            let profiles = self.shard_profiles();
            let eligible: Vec<bool> = (0..self.engines.len())
                .map(|s| self.health.eligible(s))
                .collect();
            let widths: Vec<usize> = pending.iter().map(|&ri| request_widths[ri]).collect();
            let assignment = self.dispatcher.plan_eligible(&profiles, &widths, &eligible);
            let mut work: Vec<Vec<usize>> = vec![Vec::new(); self.engines.len()];
            for (k, &s) in assignment.iter().enumerate() {
                work[s].push(pending[k]);
            }
            // Fault directives are planned up front on the pool thread —
            // the injector's state is single-threaded, workers only read
            // their own directive.
            let directives: Vec<SliceFaults> = (0..self.engines.len())
                .map(|s| {
                    if self.faults.armed() && !work[s].is_empty() {
                        self.faults.plan_slice(s, work[s].len())
                    } else {
                        SliceFaults::clean()
                    }
                })
                .collect();
            for d in &directives {
                for &label in &d.soft {
                    count_fault_injected(label);
                }
                if let Some(label) = d.hard {
                    count_fault_injected(label);
                }
            }
            let modeled_ii = self.modeled_ii_cycles();
            let serial = self.shared_chunk_cost.is_some();
            let threads = self.threads.unwrap_or_else(matador_par::configured_threads);
            let mut runs = build_runs(
                &mut self.engines,
                &profiles,
                &work,
                &mut request_inputs,
                directives,
            );
            Self::execute_runs(serial, threads, true, &mut runs);

            // Triage outcomes. Successful slices fill their slots; lost
            // slices give their inputs back and queue for redirection.
            let mut next_pending: Vec<usize> = Vec::new();
            let mut soft_faults: Vec<(usize, &'static str)> = Vec::new();
            let mut hard_faults: Vec<(usize, &'static str)> = Vec::new();
            let mut served: Vec<usize> = Vec::new();
            for (shard, run) in runs.into_iter().enumerate() {
                let indices = &work[shard];
                if indices.is_empty() {
                    continue;
                }
                for &label in &run.directives.soft {
                    soft_faults.push((shard, label));
                }
                let failure = match run.outcome {
                    Some(Ok(output)) => {
                        debug_assert_eq!(output.results.len(), indices.len());
                        for (j, &ri) in indices.iter().enumerate() {
                            slots[ri] = Some(Prediction {
                                request: request_ids[ri],
                                winner: output.results[j].winner,
                                shard,
                                latency_cycles: output.results[j].cycle - output.first_beats[j] + 1,
                                completed_at_cycle: output.results[j].cycle,
                                class_sums: self.capture_sums.then(|| output.class_sums[j].clone()),
                            });
                        }
                        served.push(shard);
                        None
                    }
                    Some(Err(SliceError::Engine(_))) => Some("engine_error"),
                    Some(Err(SliceError::Corrupted)) => Some("corrupt_sum"),
                    // An unset outcome after execution means the worker
                    // panicked — injected (the directive names it) or
                    // genuine.
                    None => Some(run.directives.hard.unwrap_or("panic")),
                };
                if let Some(cause) = failure {
                    hard_faults.push((shard, cause));
                    for (input, &ri) in run.inputs.into_iter().zip(indices) {
                        request_inputs[ri] = Some(input);
                    }
                    next_pending.extend_from_slice(indices);
                }
            }

            // Health bookkeeping, in deterministic shard order. Soft
            // faults degrade; hard faults quarantine; a clean slice on a
            // soft-fault-free shard counts toward recovery.
            for &(shard, label) in &soft_faults {
                count_fault_detected(label);
                self.health.note_soft(shard, label);
            }
            for shard in served {
                let before = profiles[shard].load;
                self.note_shard_work(
                    shard,
                    work[shard].len(),
                    profiles[shard].beats_per_request,
                    (before.ii_cycles, before.ii_samples),
                );
                if soft_faults.iter().any(|&(s, _)| s == shard) {
                    continue;
                }
                let after = self.engines[shard].load();
                let (gap_cycles, gap_samples) = (
                    after.ii_cycles - before.ii_cycles,
                    after.ii_samples - before.ii_samples,
                );
                if gap_samples > 0
                    && gap_cycles.div_ceil(gap_samples)
                        > II_OUTLIER_FACTOR.saturating_mul(modeled_ii.max(1))
                {
                    count_fault_detected("ii_outlier");
                    self.health.note_soft(shard, "ii_outlier");
                } else {
                    self.health.note_clean(shard);
                }
            }
            for (shard, cause) in hard_faults {
                count_fault_detected(cause);
                self.health.note_hard(shard, cause);
            }
            // Submission order keeps redirect planning deterministic and
            // independent of which shards failed in what order.
            next_pending.sort_unstable();
            pending = next_pending;
        }
        let predictions: Vec<Prediction> = slots
            .into_iter()
            .map(|p| p.expect("the redirect loop serves every request or fails typed"))
            .collect();
        self.latencies
            .extend(predictions.iter().map(|p| p.latency_cycles));
        Ok(predictions)
    }

    /// The partition-group flush: plan over execution *units*, run every
    /// member of a chosen unit over that unit's whole slice, and merge
    /// the members' partial class sums into each final winner.
    ///
    /// Correctness rests on the partitioner's contract
    /// ([`matador_sim::CompilePipeline::partition`]): each member's
    /// design is the same architecture over a disjoint clause range cut
    /// at even (polarity-preserving) boundaries, so summing the members'
    /// class sums element-wise reproduces the monolithic sums exactly —
    /// and because every part streams the same packet count, the
    /// members' cycle stamps are identical to the monolithic engine's.
    /// The served prediction carries the merged sums, the argmax winner,
    /// the slowest member's latency/completion stamp, and the lead
    /// (lowest-index) member as its shard attribution.
    ///
    /// In resilient mode a unit serves its slice only when *every*
    /// member produced a clean output: a partial result is meaningless
    /// (it is a vote subtotal), so any member failure discards the whole
    /// unit's slice, quarantines the failed members and redirects the
    /// requests to surviving units — the unit-level twin of
    /// [`ShardPool::flush_resilient`], with the same termination
    /// argument (every losing round quarantines at least one member,
    /// and breakers cannot half-open mid-flush).
    fn flush_partitioned(&mut self, requests: Vec<Request>) -> Result<Vec<Prediction>, ServeError> {
        self.metrics.flushes.inc();
        self.metrics.dispatched.add(requests.len() as u64);
        let units = self.units.clone();
        let request_ids: Vec<u64> = requests.iter().map(|r| r.id).collect();
        let request_widths: Vec<usize> = requests.iter().map(|r| r.input.len()).collect();
        // Members of one unit each need their own copy of the slice, so
        // inputs are cloned per run rather than moved (the ungrouped
        // paths' zero-copy hand-off has no equivalent here).
        let request_inputs: Vec<BitVec> = requests.into_iter().map(|r| r.input).collect();
        let mut slots: Vec<Option<Prediction>> = vec![None; request_ids.len()];
        let mut pending: Vec<usize> = (0..request_ids.len()).collect();
        let mut round = 0u64;
        while !pending.is_empty() {
            if self.resilient {
                for &ri in &pending {
                    self.check_healthy(request_widths[ri])?;
                }
            }
            if round > 0 {
                self.metrics.retries.inc();
                self.metrics.redirects.add(pending.len() as u64);
            }
            round += 1;
            let profiles = self.shard_profiles();
            // Unit profiles for the planner: the lead member stands in
            // for the unit (a group's members share one width and beat
            // cost by construction, and their clocks advance in
            // lockstep); the unit's weight is its most conservative
            // member's.
            let unit_profiles: Vec<ShardProfile> = units
                .iter()
                .map(|members| ShardProfile {
                    load: profiles[members[0]].load,
                    width: profiles[members[0]].width,
                    beats_per_request: profiles[members[0]].beats_per_request,
                    weight: members
                        .iter()
                        .map(|&m| self.weights[m])
                        .min()
                        .expect("units are non-empty"),
                })
                .collect();
            let widths: Vec<usize> = pending.iter().map(|&ri| request_widths[ri]).collect();
            let assignment = if self.resilient {
                let eligible: Vec<bool> = units
                    .iter()
                    .map(|members| members.iter().all(|&m| self.health.eligible(m)))
                    .collect();
                self.dispatcher
                    .plan_eligible(&unit_profiles, &widths, &eligible)
            } else {
                self.dispatcher.plan_profiles(&unit_profiles, &widths)
            };
            // Per-unit work lists (order within a unit = submission
            // order), expanded so every member runs its unit's slice.
            let mut unit_work: Vec<Vec<usize>> = vec![Vec::new(); units.len()];
            for (k, &u) in assignment.iter().enumerate() {
                unit_work[u].push(pending[k]);
            }
            let mut shard_work: Vec<Vec<usize>> = vec![Vec::new(); self.engines.len()];
            for (u, members) in units.iter().enumerate() {
                for &m in members {
                    shard_work[m] = unit_work[u].clone();
                }
            }
            let directives: Vec<SliceFaults> = (0..self.engines.len())
                .map(|s| {
                    if self.faults.armed() && !shard_work[s].is_empty() {
                        self.faults.plan_slice(s, shard_work[s].len())
                    } else {
                        SliceFaults::clean()
                    }
                })
                .collect();
            for d in &directives {
                for &label in &d.soft {
                    count_fault_injected(label);
                }
                if let Some(label) = d.hard {
                    count_fault_injected(label);
                }
            }
            let serial = self.shared_chunk_cost.is_some();
            let threads = self.threads.unwrap_or_else(matador_par::configured_threads);
            let mut runs: Vec<ShardRun<'_, 'a>> = self
                .engines
                .iter_mut()
                .zip(&profiles)
                .zip(&shard_work)
                .zip(directives)
                .map(|(((engine, profile), indices), directives)| ShardRun {
                    engine,
                    beats_per_request: profile.beats_per_request,
                    inputs: indices
                        .iter()
                        .map(|&ri| request_inputs[ri].clone())
                        .collect(),
                    directives,
                    outcome: None,
                })
                .collect();
            Self::execute_runs(serial, threads, self.resilient, &mut runs);

            // Tear the runs down into per-shard outcomes so units can be
            // triaged while the pool's health state is mutable again.
            let mut outcomes: Vec<Option<Result<ShardOutput, SliceError>>> =
                Vec::with_capacity(runs.len());
            let mut run_directives: Vec<SliceFaults> = Vec::with_capacity(runs.len());
            for run in runs {
                outcomes.push(run.outcome);
                run_directives.push(run.directives);
            }

            // Soft faults degrade their shard whether or not the unit's
            // slice also died — deterministic shard order.
            for (shard, d) in run_directives.iter().enumerate() {
                for &label in &d.soft {
                    count_fault_detected(label);
                    self.health.note_soft(shard, label);
                }
            }

            // Triage per unit: all members clean → merge and serve; any
            // failure → discard the whole slice and redirect.
            let mut next_pending: Vec<usize> = Vec::new();
            let mut hard_faults: Vec<(usize, &'static str)> = Vec::new();
            for (u, members) in units.iter().enumerate() {
                let indices = &unit_work[u];
                if indices.is_empty() {
                    continue;
                }
                let mut failed: Vec<(usize, &'static str)> = Vec::new();
                for &m in members {
                    match &outcomes[m] {
                        Some(Ok(_)) => {}
                        Some(Err(SliceError::Engine(error))) => {
                            if !self.resilient {
                                return Err(ServeError::Shard {
                                    shard: m,
                                    error: *error,
                                });
                            }
                            failed.push((m, "engine_error"));
                        }
                        Some(Err(SliceError::Corrupted)) => failed.push((m, "corrupt_sum")),
                        // An unset outcome after execution means the
                        // worker panicked (only reachable in resilient
                        // mode, where panics are contained).
                        None => failed.push((m, run_directives[m].hard.unwrap_or("panic"))),
                    }
                }
                if !failed.is_empty() {
                    hard_faults.extend(failed);
                    next_pending.extend_from_slice(indices);
                    continue;
                }
                let lead = members[0];
                for (j, &ri) in indices.iter().enumerate() {
                    let mut merged: Vec<i32> = Vec::new();
                    let mut latency = 0u64;
                    let mut completed = 0u64;
                    for &m in members {
                        let Some(Ok(output)) = &outcomes[m] else {
                            unreachable!("failed units never reach the merge")
                        };
                        if members.len() > 1 {
                            if merged.is_empty() {
                                merged.clone_from(&output.class_sums[j]);
                            } else {
                                for (acc, &s) in merged.iter_mut().zip(&output.class_sums[j]) {
                                    *acc += s;
                                }
                            }
                        }
                        latency = latency.max(output.results[j].cycle - output.first_beats[j] + 1);
                        completed = completed.max(output.results[j].cycle);
                    }
                    let Some(Ok(lead_output)) = &outcomes[lead] else {
                        unreachable!("failed units never reach the merge")
                    };
                    let winner = if members.len() > 1 {
                        tsetlin::tm::argmax(&merged)
                    } else {
                        lead_output.results[j].winner
                    };
                    let class_sums = self.capture_sums.then(|| {
                        if members.len() > 1 {
                            merged.clone()
                        } else {
                            lead_output.class_sums[j].clone()
                        }
                    });
                    slots[ri] = Some(Prediction {
                        request: request_ids[ri],
                        winner,
                        shard: lead,
                        latency_cycles: latency,
                        completed_at_cycle: completed,
                        class_sums,
                    });
                }
                // Every member did real engine work — book it per
                // member (the report's per-shard streams stay honest),
                // and clean runs count toward breaker recovery.
                for &m in members {
                    let before = profiles[m].load;
                    self.note_shard_work(
                        m,
                        indices.len(),
                        profiles[m].beats_per_request,
                        (before.ii_cycles, before.ii_samples),
                    );
                    if self.resilient && run_directives[m].is_clean() {
                        self.health.note_clean(m);
                    }
                }
            }
            for (shard, cause) in hard_faults {
                count_fault_detected(cause);
                self.health.note_hard(shard, cause);
            }
            // Submission order keeps redirect planning deterministic.
            next_pending.sort_unstable();
            pending = next_pending;
        }
        let predictions: Vec<Prediction> = slots
            .into_iter()
            .map(|p| p.expect("the partitioned flush serves every request or fails typed"))
            .collect();
        self.latencies
            .extend(predictions.iter().map(|p| p.latency_cycles));
        Ok(predictions)
    }

    /// The shard a flush of `pending` requests should run on when one
    /// shard can take it whole: the only shard of a one-shard pool, or —
    /// on a homogeneous turbo pool with consolidation enabled — the
    /// least-loaded shard (tie → lowest index) when the flush carries
    /// less than one consolidation floor of tape work per shard.
    ///
    /// The floor is the chunk threshold *clamped to the built-in default*:
    /// `chunk_threshold` is an intra-shard fan-out knob whose `u64::MAX`
    /// sentinel means "never chunk", and before the clamp that sentinel
    /// leaked into this decision — `spread_floor` saturated to `u64::MAX`
    /// and every flush, however large, consolidated onto a single shard,
    /// silently turning a multi-shard pool into one shard. Clamping keeps
    /// the two knobs decoupled: threshold `0` still disables consolidation
    /// (every flush spreads), the default passes through unchanged, and
    /// `u64::MAX` disables chunking only, leaving consolidation at the
    /// default floor.
    fn single_executor(&self, pending: usize) -> Option<usize> {
        if self.engines.len() == 1 {
            return Some(0);
        }
        let chunk_cost = self.shared_chunk_cost?;
        if !self.consolidate {
            return None;
        }
        let lane_words = pending.div_ceil(matador_sim::LANES) as u64;
        let batch_cost = chunk_cost.saturating_mul(lane_words);
        if !Self::flush_consolidates(batch_cost, self.chunk_threshold, self.engines.len() as u64) {
            return None;
        }
        // Resilient pools never consolidate onto a quarantined shard;
        // with nothing eligible the flush falls through to the spread
        // path, whose health check turns that into a typed error.
        self.engines
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.resilient || self.health.eligible(i))
            .min_by_key(|(i, e)| (e.load().cycles, *i))
            .map(|(i, _)| i)
    }

    /// Whether a flush of `batch_cost` tape work (chunk cost × lane
    /// words) may consolidate onto one shard of a `shards`-shard pool.
    ///
    /// The per-shard floor is `chunk_threshold` clamped to
    /// [`matador_sim::DEFAULT_CHUNK_THRESHOLD`]: the threshold's
    /// `u64::MAX` sentinel ("never chunk") must not leak into the
    /// consolidation decision, where it would saturate the floor and
    /// consolidate *every* flush — see [`ShardPool::single_executor`].
    /// Threshold `0` keeps its "always spread" meaning for both knobs.
    fn flush_consolidates(batch_cost: u64, chunk_threshold: u64, shards: u64) -> bool {
        let spread_floor = chunk_threshold
            .min(matador_sim::DEFAULT_CHUNK_THRESHOLD)
            .saturating_mul(shards);
        batch_cost < spread_floor
    }

    /// Runs one whole flush on `shard`, inline on the caller — the
    /// fast path behind [`ShardPool::flush`]: no dispatch planning, no
    /// cross-shard reassembly, predictions built in submission order
    /// directly. The dispatcher's round-robin cursors are deliberately
    /// left untouched: a consolidated flush never rotates them, which
    /// keeps the assignment deterministic for any flush sequence.
    fn flush_to_shard(
        &mut self,
        shard: usize,
        requests: Vec<Request>,
    ) -> Result<Vec<Prediction>, ServeError> {
        self.metrics.flushes.inc();
        if self.engines.len() > 1 {
            self.metrics.consolidated.inc();
        }
        let before = self.engines[shard].load();
        let beats = self.designs[shard].shape().num_packets() as u64;
        let mut ids = Vec::with_capacity(requests.len());
        let mut inputs = Vec::with_capacity(requests.len());
        for r in requests {
            ids.push(r.id);
            inputs.push(r.input);
        }
        let output = self.engines[shard]
            .run(&inputs, beats)
            .map_err(|error| ServeError::Shard { shard, error })?;
        debug_assert_eq!(output.results.len(), ids.len());
        let predictions: Vec<Prediction> = ids
            .into_iter()
            .enumerate()
            .map(|(j, request)| Prediction {
                request,
                winner: output.results[j].winner,
                shard,
                latency_cycles: output.results[j].cycle - output.first_beats[j] + 1,
                completed_at_cycle: output.results[j].cycle,
                class_sums: self.capture_sums.then(|| output.class_sums[j].clone()),
            })
            .collect();
        self.latencies
            .extend(predictions.iter().map(|p| p.latency_cycles));
        self.note_shard_work(
            shard,
            predictions.len(),
            beats,
            (before.ii_cycles, before.ii_samples),
        );
        Ok(predictions)
    }

    /// The resilient twin of [`ShardPool::flush_to_shard`]: runs the
    /// whole flush on one shard with fault injection and panic
    /// containment, hopping to the next least-loaded eligible compatible
    /// shard whenever the current candidate suffers a hard fault. The
    /// hop terminates: every failed attempt quarantines its shard, and
    /// breakers cannot half-open again mid-flush.
    fn flush_to_shard_resilient(
        &mut self,
        mut shard: usize,
        requests: Vec<Request>,
    ) -> Result<Vec<Prediction>, ServeError> {
        self.metrics.flushes.inc();
        if self.engines.len() > 1 {
            self.metrics.consolidated.inc();
        }
        let width = requests[0].input.len();
        let mut ids = Vec::with_capacity(requests.len());
        let mut inputs = Vec::with_capacity(requests.len());
        for r in requests {
            ids.push(r.id);
            inputs.push(r.input);
        }
        loop {
            self.check_healthy(width)?;
            let directives = if self.faults.armed() {
                self.faults.plan_slice(shard, inputs.len())
            } else {
                SliceFaults::clean()
            };
            for &label in &directives.soft {
                count_fault_injected(label);
            }
            if let Some(label) = directives.hard {
                count_fault_injected(label);
            }
            let before = self.engines[shard].load();
            let beats = self.designs[shard].shape().num_packets() as u64;
            let outcome = {
                let engine = &mut self.engines[shard];
                let mut faulty = FaultyEngine {
                    engine,
                    directives: &directives,
                };
                catch_unwind(AssertUnwindSafe(|| faulty.run(&inputs, beats)))
            };
            // Soft faults degrade the shard whether or not the slice
            // also died; the breaker sees every injected symptom.
            for &label in &directives.soft {
                count_fault_detected(label);
                self.health.note_soft(shard, label);
            }
            let failure = match outcome {
                Ok(Ok(output)) => {
                    debug_assert_eq!(output.results.len(), ids.len());
                    let predictions: Vec<Prediction> = ids
                        .into_iter()
                        .enumerate()
                        .map(|(j, request)| Prediction {
                            request,
                            winner: output.results[j].winner,
                            shard,
                            latency_cycles: output.results[j].cycle - output.first_beats[j] + 1,
                            completed_at_cycle: output.results[j].cycle,
                            class_sums: self.capture_sums.then(|| output.class_sums[j].clone()),
                        })
                        .collect();
                    self.latencies
                        .extend(predictions.iter().map(|p| p.latency_cycles));
                    self.note_shard_work(
                        shard,
                        predictions.len(),
                        beats,
                        (before.ii_cycles, before.ii_samples),
                    );
                    if directives.is_clean() {
                        self.health.note_clean(shard);
                    }
                    return Ok(predictions);
                }
                Ok(Err(SliceError::Engine(_))) => "engine_error",
                Ok(Err(SliceError::Corrupted)) => "corrupt_sum",
                Err(_) => directives.hard.unwrap_or("panic"),
            };
            count_fault_detected(failure);
            self.health.note_hard(shard, failure);
            self.metrics.retries.inc();
            self.metrics.redirects.add(ids.len() as u64);
            // Redirect to the least-loaded surviving compatible shard;
            // with none left, the health check at the loop head fails
            // typed instead of retrying the dead candidate.
            if let Some(next) = self
                .engines
                .iter()
                .enumerate()
                .filter(|&(s, _)| {
                    self.health.eligible(s) && self.designs[s].shape().features == width
                })
                .min_by_key(|(s, e)| (e.load().cycles, *s))
                .map(|(s, _)| s)
            {
                shard = next;
            }
        }
    }

    /// Runs one serve window on `shard` straight from the caller's
    /// borrowed slice — the zero-copy twin of
    /// [`ShardPool::flush_to_shard`] for inputs that never entered the
    /// FIFO. Request ids are the contiguous block starting at
    /// `first_id` (from [`RequestQueue::admit_block`]).
    fn run_shard_window(
        &mut self,
        shard: usize,
        first_id: u64,
        inputs: &[BitVec],
    ) -> Result<Vec<Prediction>, ServeError> {
        self.metrics.flushes.inc();
        if self.engines.len() > 1 {
            self.metrics.consolidated.inc();
        }
        let before = self.engines[shard].load();
        let beats = self.designs[shard].shape().num_packets() as u64;
        let output = self.engines[shard]
            .run(inputs, beats)
            .map_err(|error| ServeError::Shard { shard, error })?;
        debug_assert_eq!(output.results.len(), inputs.len());
        let predictions: Vec<Prediction> = output
            .results
            .iter()
            .enumerate()
            .map(|(j, result)| Prediction {
                request: first_id + j as u64,
                winner: result.winner,
                shard,
                latency_cycles: result.cycle - output.first_beats[j] + 1,
                completed_at_cycle: result.cycle,
                class_sums: self.capture_sums.then(|| output.class_sums[j].clone()),
            })
            .collect();
        self.latencies
            .extend(predictions.iter().map(|p| p.latency_cycles));
        self.note_shard_work(
            shard,
            predictions.len(),
            beats,
            (before.ii_cycles, before.ii_samples),
        );
        Ok(predictions)
    }

    /// Serves a whole batch: submits each datapoint, flushing whenever
    /// the bounded queue fills, and once more at the end. Returns
    /// predictions in input order. The queue's depth bound is respected
    /// by flushing *before* it would overflow, so the backpressure
    /// counter ([`RequestQueue::rejected`]) only ever reflects real
    /// external rejections, never this loop's own batching.
    ///
    /// When the queue starts empty and a window lands on a single shard
    /// (a one-shard pool, or a consolidated flush on a homogeneous turbo
    /// pool), the window runs zero-copy from the borrowed slice with
    /// block-admitted ids — identical results, ids, latencies, and
    /// admission counters to the submit/flush path, minus the clones.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WidthMismatch`] /
    /// [`ServeError::NoCompatibleShard`] — checked for the *whole* batch
    /// up front, before anything is flushed, so a malformed input cannot
    /// strand already-classified predictions — and propagates
    /// [`ServeError::Shard`] from flushing.
    pub fn serve(&mut self, inputs: &[BitVec]) -> Result<Vec<Prediction>, ServeError> {
        for input in inputs {
            self.check_width(input.len())?;
        }
        let mut out = Vec::with_capacity(inputs.len());
        // Resilient pools always route through submit/flush: the fault
        // injector and health bookkeeping bracket every slice there, and
        // the zero-copy window path has no retry story for a borrowed
        // slice. Fault-free pools keep the fast path untouched.
        if self.queue.is_empty() && !self.resilient {
            // Zero-copy path: with nothing pending, each flush window is
            // exactly a queue-capacity chunk of the caller's slice. Any
            // window a single shard can take whole runs straight off the
            // borrowed inputs — ids come from a block admission, and the
            // datapoints are never cloned into the FIFO.
            for window in inputs.chunks(self.queue.capacity()) {
                if let Some(shard) = self.single_executor(window.len()) {
                    let first_id = self.queue.admit_block(window.len())?;
                    out.extend(self.run_shard_window(shard, first_id, window)?);
                } else {
                    for input in window {
                        self.queue.push(input.clone())?;
                    }
                    out.extend(self.flush()?);
                }
            }
            return Ok(out);
        }
        for input in inputs {
            if self.queue.len() >= self.queue.capacity() {
                out.extend(self.flush()?);
            }
            self.submit(input)?;
        }
        out.extend(self.flush()?);
        Ok(out)
    }

    /// Merges every shard's stream statistics (engine cycles, monitor
    /// datapoint counts, transfers, stalls) and the pool's latency samples
    /// into a whole-pool [`ThroughputReport`].
    pub fn report(&self) -> ThroughputReport {
        let shards = self
            .engines
            .iter()
            .enumerate()
            .map(|(i, e)| e.stats(i))
            .collect();
        ThroughputReport::merge(shards, &self.latencies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matador_logic::cube::{Cube, Lit};
    use matador_logic::dag::Sharing;
    use matador_sim::AccelShape;

    /// 8-feature, 2-packet accelerator: class 0 votes for x0, class 1 for
    /// x4 (mirrors the engine's own test design).
    fn accel() -> CompiledAccelerator {
        let shape = AccelShape {
            bus_width: 4,
            features: 8,
            classes: 2,
            clauses_per_class: 2,
        };
        let w0 = vec![
            Cube::from_lits([Lit::pos(0)]),
            Cube::from_lits([Lit::pos(1)]),
            Cube::from_lits([Lit::pos(2)]),
            Cube::from_lits([Lit::pos(3)]),
        ];
        let w1 = vec![
            Cube::one(),
            Cube::one(),
            Cube::from_lits([Lit::pos(0)]),
            Cube::one(),
        ];
        CompiledAccelerator::from_window_cubes(shape, &[w0, w1], Sharing::Enabled)
    }

    /// The same boolean function as [`accel`], recompiled on a 2-bit bus:
    /// 4 packets per datapoint instead of 2. Predictions agree with
    /// `accel()` on every input; only the stream geometry differs.
    fn narrow_accel() -> CompiledAccelerator {
        let shape = AccelShape {
            bus_width: 2,
            features: 8,
            classes: 2,
            clauses_per_class: 2,
        };
        let w0 = vec![
            Cube::from_lits([Lit::pos(0)]),
            Cube::from_lits([Lit::pos(1)]),
            Cube::one(),
            Cube::one(),
        ];
        let w1 = vec![
            Cube::one(),
            Cube::one(),
            Cube::from_lits([Lit::pos(0)]),
            Cube::from_lits([Lit::pos(1)]),
        ];
        let w2 = vec![
            Cube::one(),
            Cube::one(),
            Cube::from_lits([Lit::pos(0)]),
            Cube::one(),
        ];
        let w3 = vec![Cube::one(); 4];
        CompiledAccelerator::from_window_cubes(shape, &[w0, w1, w2, w3], Sharing::Enabled)
    }

    /// A 6-feature design — a different width class entirely.
    fn six_feature_accel() -> CompiledAccelerator {
        let shape = AccelShape {
            bus_width: 3,
            features: 6,
            classes: 2,
            clauses_per_class: 1,
        };
        let w0 = vec![Cube::from_lits([Lit::pos(0)]), Cube::one()];
        let w1 = vec![Cube::one(), Cube::from_lits([Lit::pos(0)])];
        CompiledAccelerator::from_window_cubes(shape, &[w0, w1], Sharing::Enabled)
    }

    fn inputs(n: usize) -> Vec<BitVec> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    BitVec::from_indices(8, &[0])
                } else {
                    BitVec::from_indices(8, &[4])
                }
            })
            .collect()
    }

    #[test]
    fn zero_shards_is_a_typed_error() {
        let a = accel();
        assert!(matches!(
            ShardPool::new(&a, 0).unwrap_err(),
            ServeError::ZeroShards
        ));
    }

    #[test]
    fn predictions_match_reference_on_every_shard_count() {
        let a = accel();
        let xs = inputs(11);
        let expected: Vec<usize> = xs
            .iter()
            .map(|x| tsetlin::tm::argmax(&a.reference_class_sums(x)))
            .collect();
        for shards in [1, 2, 3, 8] {
            let mut pool = ShardPool::new(&a, shards).expect("valid");
            let winners: Vec<usize> = pool
                .serve(&xs)
                .expect("drains")
                .iter()
                .map(|p| p.winner)
                .collect();
            assert_eq!(winners, expected, "shards={shards}");
        }
    }

    #[test]
    fn round_robin_spreads_requests() {
        let a = accel();
        let mut pool = ShardPool::new(&a, 4).expect("valid");
        let preds = pool.serve(&inputs(8)).expect("drains");
        let shards: Vec<usize> = preds.iter().map(|p| p.shard).collect();
        assert_eq!(shards, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn width_mismatch_is_typed() {
        let a = accel();
        let mut pool = ShardPool::new(&a, 2).expect("valid");
        let err = pool.submit(&BitVec::zeros(5)).unwrap_err();
        assert_eq!(
            err,
            ServeError::WidthMismatch {
                expected: 8,
                got: 5
            }
        );
    }

    #[test]
    fn serve_rejects_malformed_batches_atomically() {
        let a = accel();
        let mut options = ServeOptions::new(2);
        options.queue_depth = 2;
        let mut pool = ShardPool::with_options(&a, options).expect("valid");
        // A bad width deep in the batch (past several flush boundaries)
        // must fail before *anything* runs — no stranded predictions, no
        // phantom datapoints in the report.
        let mut batch = inputs(7);
        batch.push(BitVec::zeros(5));
        let err = pool.serve(&batch).unwrap_err();
        assert!(matches!(err, ServeError::WidthMismatch { got: 5, .. }));
        assert_eq!(pool.report().datapoints, 0);
        assert!(pool.latencies().is_empty());
        // The pool stays fully usable afterwards.
        assert_eq!(pool.serve(&inputs(7)).expect("drains").len(), 7);
    }

    #[test]
    fn bounded_queue_backpressures_then_recovers() {
        let a = accel();
        let mut options = ServeOptions::new(2);
        options.queue_depth = 3;
        let mut pool = ShardPool::with_options(&a, options).expect("valid");
        for _ in 0..3 {
            pool.submit(&BitVec::from_indices(8, &[0]))
                .expect("admitted");
        }
        let err = pool.submit(&BitVec::from_indices(8, &[0])).unwrap_err();
        assert_eq!(err, ServeError::QueueFull { capacity: 3 });
        assert_eq!(pool.queue().rejected(), 1);
        // serve() flushes *before* the bound would trip: a batch much
        // larger than the queue completes in order without recording any
        // self-inflicted rejections.
        let preds = pool.serve(&inputs(10)).expect("drains");
        assert_eq!(preds.len(), 3 + 10);
        assert_eq!(pool.queue().rejected(), 1);
    }

    #[test]
    fn latency_matches_single_engine_formula() {
        let a = accel(); // 2 packets → latency 2 + 3
        let mut pool = ShardPool::new(&a, 2).expect("valid");
        let preds = pool.serve(&inputs(4)).expect("drains");
        for p in &preds {
            assert_eq!(p.latency_cycles, 2 + 3, "{p:?}");
        }
        let report = pool.report();
        assert_eq!(report.latency_p50_cycles, 5);
        assert_eq!(report.latency_p99_cycles, 5);
        assert_eq!(report.datapoints, 4);
    }

    #[test]
    fn pipelined_sum_option_adds_one_cycle() {
        let a = accel();
        let mut options = ServeOptions::new(1);
        options.pipelined_sum = true;
        let mut pool = ShardPool::with_options(&a, options).expect("valid");
        let preds = pool.serve(&inputs(2)).expect("drains");
        assert!(preds.iter().all(|p| p.latency_cycles == 2 + 4));
    }

    #[test]
    fn class_sums_captured_when_requested() {
        let a = accel();
        let mut options = ServeOptions::new(2);
        options.capture_class_sums = true;
        let mut pool = ShardPool::with_options(&a, options).expect("valid");
        let xs = inputs(6);
        let preds = pool.serve(&xs).expect("drains");
        for (x, p) in xs.iter().zip(&preds) {
            assert_eq!(
                p.class_sums.as_deref(),
                Some(a.reference_class_sums(x).as_slice())
            );
        }
        // Off by default: no sums carried.
        let mut plain = ShardPool::new(&a, 2).expect("valid");
        assert!(plain.serve(&xs).expect("drains")[0].class_sums.is_none());
    }

    #[test]
    fn multi_shard_pool_cycles_beat_single_shard() {
        let a = accel();
        let xs = inputs(32);
        let pool_cycles = |shards: usize| {
            let mut pool = ShardPool::new(&a, shards).expect("valid");
            pool.serve(&xs).expect("drains");
            pool.report().pool_cycles
        };
        let one = pool_cycles(1);
        let four = pool_cycles(4);
        assert!(four < one, "4 shards {four} !< 1 shard {one}");
    }

    #[test]
    fn report_is_identical_at_any_thread_count() {
        let a = accel();
        let xs = inputs(17);
        let run = |threads: usize| {
            let mut options = ServeOptions::new(4);
            options.threads = Some(threads);
            options.capture_class_sums = true;
            let mut pool = ShardPool::with_options(&a, options).expect("valid");
            let preds = pool.serve(&xs).expect("drains");
            (preds, pool.report())
        };
        let sequential = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), sequential, "threads={threads}");
        }
    }

    #[test]
    fn least_queued_balances_cumulative_load_across_flushes() {
        let a = accel();
        let mut options = ServeOptions::new(2);
        options.policy = DispatchPolicy::LeastQueued;
        let mut pool = ShardPool::with_options(&a, options).expect("valid");
        // First flush: one request lands on shard 0 (tie → lowest index),
        // leaving shard 0 with cycle history and shard 1 idle.
        let first = pool.serve(&inputs(1)).expect("drains");
        assert_eq!(first[0].shard, 0);
        // Second flush: shard 1 has strictly less accumulated load, so it
        // absorbs the next requests until it catches up.
        let second = pool.serve(&inputs(2)).expect("drains");
        assert_eq!(
            second.iter().map(|p| p.shard).collect::<Vec<_>>(),
            vec![1, 1]
        );
    }

    #[test]
    fn least_queued_agrees_with_round_robin_on_predictions() {
        let a = accel();
        let xs = inputs(13);
        let winners = |policy: DispatchPolicy| {
            let mut options = ServeOptions::new(3);
            options.policy = policy;
            let mut pool = ShardPool::with_options(&a, options).expect("valid");
            pool.serve(&xs)
                .expect("drains")
                .iter()
                .map(|p| p.winner)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            winners(DispatchPolicy::RoundRobin),
            winners(DispatchPolicy::LeastQueued)
        );
    }

    #[test]
    fn empty_flush_is_a_no_op() {
        let a = accel();
        let mut pool = ShardPool::new(&a, 2).expect("valid");
        assert!(pool.flush().expect("trivially drains").is_empty());
        assert_eq!(pool.report().datapoints, 0);
    }

    #[test]
    fn turbo_backend_is_bit_identical_including_reports() {
        let a = accel();
        let xs = inputs(23);
        for shards in [1usize, 3] {
            for policy in [
                DispatchPolicy::RoundRobin,
                DispatchPolicy::LeastQueued,
                DispatchPolicy::LatencyAware,
            ] {
                let serve_twice = |backend: EngineBackend| {
                    let mut options = ServeOptions::new(shards);
                    options.policy = policy;
                    options.capture_class_sums = true;
                    options.backend = backend;
                    // Shard *assignments* must match the cycle pool too,
                    // so keep the turbo pool on the configured policy.
                    options.consolidate = false;
                    let mut pool = ShardPool::with_options(&a, options).expect("valid");
                    // Two batches exercise the cumulative shard clocks the
                    // stateful policies dispatch on.
                    let mut preds = pool.serve(&xs[..9]).expect("drains");
                    preds.extend(pool.serve(&xs[9..]).expect("drains"));
                    (preds, pool.report())
                };
                let cycle = serve_twice(EngineBackend::CycleAccurate);
                let turbo = serve_twice(EngineBackend::Turbo);
                assert_eq!(turbo, cycle, "shards={shards} {policy:?}");
            }
        }
    }

    #[test]
    fn small_turbo_flushes_consolidate_onto_the_least_loaded_shard() {
        let a = accel();
        let xs = inputs(12);
        // Well below one chunk threshold of work per shard: the default
        // round-robin policy would spread, consolidation sends the whole
        // flush to one shard instead.
        let mut pool = ShardPool::with_options(&a, ServeOptions::turbo(4)).expect("valid");
        let first = pool.serve(&xs).expect("infallible");
        assert!(first.iter().all(|p| p.shard == 0), "fresh pool → shard 0");
        // The next flush finds shard 0 loaded and picks an idle shard.
        let second = pool.serve(&xs).expect("infallible");
        assert!(second.iter().all(|p| p.shard == 1), "tie → lowest idle");
        // Winners and latencies are exactly the single-shard answers.
        let mut single = ShardPool::with_options(&a, ServeOptions::turbo(1)).expect("valid");
        let alone = single.serve(&xs).expect("infallible");
        for (p, q) in first.iter().zip(&alone) {
            assert_eq!((p.winner, p.latency_cycles), (q.winner, q.latency_cycles));
        }
    }

    /// Pins the consolidation decision at the three interesting
    /// thresholds. The `u64::MAX` rows are the regression for the
    /// sentinel-overflow bug: pre-fix, `spread_floor` saturated to
    /// `u64::MAX` and a flush of *any* cost consolidated, so a
    /// multi-shard pool sweeping `chunk_threshold = u64::MAX` (the
    /// documented "disable chunk fan-out" sentinel) silently served every
    /// flush from one shard.
    #[test]
    fn consolidation_floor_is_decoupled_from_the_chunk_sentinel() {
        use matador_sim::DEFAULT_CHUNK_THRESHOLD as DEFAULT;
        let consolidates =
            |cost: u64, threshold: u64| ShardPool::flush_consolidates(cost, threshold, 4);
        // Threshold 0: consolidation disabled, every flush spreads.
        assert!(!consolidates(0, 0));
        assert!(!consolidates(1, 0));
        // Default threshold: small flushes consolidate, big ones spread.
        assert!(consolidates(4 * DEFAULT - 1, DEFAULT));
        assert!(!consolidates(4 * DEFAULT, DEFAULT));
        // u64::MAX sentinel: chunking is disabled, but consolidation must
        // keep the *default* floor — a batch past it still spreads over
        // the shards. Pre-fix both asserts below failed.
        assert!(!consolidates(4 * DEFAULT, u64::MAX));
        assert!(!consolidates(u64::MAX, u64::MAX));
        // ... while genuinely small flushes still consolidate at MAX,
        // exactly as they do at the default.
        assert!(consolidates(4 * DEFAULT - 1, u64::MAX));
        // In-between thresholds below the default pass through unclamped.
        assert!(consolidates(4 * 100 - 1, 100));
        assert!(!consolidates(4 * 100, 100));
    }

    #[test]
    fn chunk_sentinel_pool_still_consolidates_small_flushes() {
        // Pool-level companion to the pure-function regression: with the
        // sentinel threshold a small flush behaves exactly as it does at
        // the default — consolidated onto the least-loaded shard — and a
        // zero threshold spreads even a tiny flush round-robin.
        let a = accel();
        let serve_shards = |threshold: u64| {
            let mut options = ServeOptions::turbo(4);
            options.chunk_threshold = Some(threshold);
            let mut pool = ShardPool::with_options(&a, options).expect("valid");
            pool.serve(&inputs(8))
                .expect("drains")
                .iter()
                .map(|p| p.shard)
                .collect::<Vec<_>>()
        };
        assert_eq!(serve_shards(u64::MAX), vec![0; 8], "sentinel consolidates");
        assert_eq!(
            serve_shards(matador_sim::DEFAULT_CHUNK_THRESHOLD),
            vec![0; 8],
            "default consolidates"
        );
        assert_eq!(
            serve_shards(0),
            vec![0, 1, 2, 3, 0, 1, 2, 3],
            "threshold 0 spreads round-robin"
        );
    }

    #[test]
    fn consolidation_off_spreads_even_tiny_turbo_flushes() {
        let a = accel();
        let mut options = ServeOptions::turbo(4);
        options.consolidate = false;
        let mut pool = ShardPool::with_options(&a, options).expect("valid");
        let preds = pool.serve(&inputs(8)).expect("infallible");
        let shards: Vec<usize> = preds.iter().map(|p| p.shard).collect();
        assert_eq!(shards, vec![0, 1, 2, 3, 0, 1, 2, 3], "round-robin kept");
    }

    #[test]
    fn turbo_convenience_options_select_the_backend() {
        let a = accel();
        let options = ServeOptions::turbo(2);
        assert_eq!(options.backend, EngineBackend::Turbo);
        let mut pool = ShardPool::with_options(&a, options).expect("valid");
        let preds = pool.serve(&inputs(5)).expect("infallible");
        assert_eq!(preds.len(), 5);
        assert!(preds.iter().all(|p| p.latency_cycles == 2 + 3));
    }

    #[test]
    fn latency_aware_matches_least_queued_on_uniform_load() {
        let a = accel();
        let xs = inputs(12);
        let serve_fresh = |policy: DispatchPolicy| {
            let mut options = ServeOptions::new(3);
            options.policy = policy;
            let mut pool = ShardPool::with_options(&a, options).expect("valid");
            pool.serve(&xs).expect("drains")
        };
        // From a fresh (uniform) pool the two policies plan identically —
        // same shard assignment, same predictions.
        assert_eq!(
            serve_fresh(DispatchPolicy::LatencyAware),
            serve_fresh(DispatchPolicy::LeastQueued)
        );
    }

    #[test]
    fn latency_aware_beats_least_queued_on_a_skewed_batch() {
        let a = accel(); // 2 packets → a 1-datapoint flush costs 5 cycles
        let run = |policy: DispatchPolicy| {
            let mut options = ServeOptions::new(2);
            options.policy = policy;
            let mut pool = ShardPool::with_options(&a, options).expect("valid");
            // Skew the histories: a lone request lands on shard 0.
            pool.serve(&inputs(1)).expect("drains");
            let before: Vec<u64> = pool.report().shards.iter().map(|s| s.cycles).collect();
            let preds = pool.serve(&inputs(8)).expect("drains");
            let makespan = pool
                .report()
                .shards
                .iter()
                .zip(&before)
                .map(|(s, b)| s.cycles - b)
                .max()
                .expect("two shards");
            let winners: Vec<usize> = preds.iter().map(|p| p.winner).collect();
            (winners, makespan)
        };
        let (lq_winners, lq_makespan) = run(DispatchPolicy::LeastQueued);
        let (la_winners, la_makespan) = run(DispatchPolicy::LatencyAware);
        // Identical answers (dispatch never changes predictions) …
        assert_eq!(la_winners, lq_winners);
        // … but LeastQueued "repays" shard 0's history by overloading
        // shard 1 (3/5 split → 13-cycle drain), while LatencyAware
        // schedules the batch itself evenly (4/4 → 11 cycles).
        assert_eq!(lq_makespan, 13);
        assert_eq!(la_makespan, 11);
    }

    #[test]
    fn drain_model_accessors_reflect_the_designs() {
        let a = accel(); // 2 packets/datapoint
        let mut pool = ShardPool::new(&a, 2).expect("valid");
        assert_eq!(pool.latency_floor_cycles(), 2 + 3);
        assert_eq!(pool.beats_for_width(8), 2);
        assert_eq!(pool.beats_for_width(99), 1, "unserved width falls back");
        // No steady-state history yet: the bandwidth-bound fallback.
        assert_eq!(pool.modeled_ii_cycles(), 2);
        assert_eq!(pool.shard_cycles(), vec![0, 0]);
        pool.serve(&inputs(8)).expect("drains");
        assert!(pool.shard_cycles().iter().all(|&c| c > 0));
        // Back-to-back streaming observes the bandwidth-bound II.
        assert_eq!(pool.modeled_ii_cycles(), 2);
        // A pipelined class sum raises the floor by its extra cycle.
        let mut opts = ServeOptions::new(1);
        opts.pipelined_sum = true;
        let pool = ShardPool::with_options(&a, opts).expect("valid");
        assert_eq!(pool.latency_floor_cycles(), 2 + 4);
    }

    #[test]
    fn completion_stamps_match_shard_clocks() {
        let a = accel();
        let mut pool = ShardPool::new(&a, 2).expect("valid");
        let before = pool.shard_cycles();
        let preds = pool.serve(&inputs(6)).expect("drains");
        let after = pool.shard_cycles();
        for p in &preds {
            // Stamps live on the shard-local clock, inside this flush.
            assert!(p.completed_at_cycle > before[p.shard], "{p:?}");
            assert!(p.completed_at_cycle <= after[p.shard], "{p:?}");
        }
        // Within one shard, stamps are strictly increasing in
        // submission order — the reorder stage's ordering key.
        for shard in 0..2 {
            let stamps: Vec<u64> = preds
                .iter()
                .filter(|p| p.shard == shard)
                .map(|p| p.completed_at_cycle)
                .collect();
            assert!(stamps.windows(2).all(|w| w[0] < w[1]), "{stamps:?}");
        }
    }

    // --- heterogeneous pools ---

    fn hetero_specs() -> Vec<ShardSpec> {
        vec![ShardSpec::new(accel()), ShardSpec::new(narrow_accel())]
    }

    #[test]
    fn empty_spec_list_is_a_typed_error() {
        let specs: Vec<ShardSpec> = Vec::new();
        assert!(matches!(
            ShardPool::heterogeneous(&specs, ServeOptions::new(1)).unwrap_err(),
            ServeError::ZeroShards
        ));
    }

    #[test]
    fn zero_weight_spec_is_a_typed_error() {
        let specs = vec![ShardSpec::new(accel()), ShardSpec::new(accel()).weight(0)];
        assert_eq!(
            ShardPool::heterogeneous(&specs, ServeOptions::new(1)).unwrap_err(),
            ServeError::ZeroWeight { shard: 1 }
        );
    }

    #[test]
    fn mixed_bus_widths_agree_with_the_reference_on_every_request() {
        // Same model compiled on a 4-bit and a 2-bit bus behind one pool:
        // identical predictions regardless of which shard serves which
        // request, under every policy.
        let specs = hetero_specs();
        let xs = inputs(13);
        let expected: Vec<usize> = xs
            .iter()
            .map(|x| tsetlin::tm::argmax(&specs[0].design.reference_class_sums(x)))
            .collect();
        for policy in [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LeastQueued,
            DispatchPolicy::LatencyAware,
        ] {
            let mut options = ServeOptions::new(1);
            options.policy = policy;
            let mut pool = ShardPool::heterogeneous(&specs, options).expect("valid");
            let preds = pool.serve(&xs).expect("drains");
            let winners: Vec<usize> = preds.iter().map(|p| p.winner).collect();
            assert_eq!(winners, expected, "{policy:?}");
            // Both shards actually participated.
            assert!(preds.iter().any(|p| p.shard == 0), "{policy:?}");
            assert!(preds.iter().any(|p| p.shard == 1), "{policy:?}");
        }
    }

    #[test]
    fn no_compatible_shard_is_typed_not_a_panic() {
        let specs = vec![ShardSpec::new(accel()), ShardSpec::new(six_feature_accel())];
        let mut pool = ShardPool::heterogeneous(&specs, ServeOptions::new(1)).expect("valid");
        assert_eq!(pool.widths(), &[6, 8]);
        let err = pool.submit(&BitVec::zeros(5)).unwrap_err();
        assert_eq!(
            err,
            ServeError::NoCompatibleShard {
                got: 5,
                widths: vec![6, 8],
            }
        );
        // The batched entry point rejects atomically too.
        let err = pool
            .serve(&[BitVec::zeros(8), BitVec::zeros(5)])
            .unwrap_err();
        assert!(matches!(err, ServeError::NoCompatibleShard { got: 5, .. }));
        assert_eq!(pool.report().datapoints, 0);
    }

    #[test]
    fn mixed_widths_route_only_to_compatible_shards() {
        let specs = vec![ShardSpec::new(accel()), ShardSpec::new(six_feature_accel())];
        for policy in [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LeastQueued,
            DispatchPolicy::LatencyAware,
        ] {
            let mut options = ServeOptions::new(1);
            options.policy = policy;
            let mut pool = ShardPool::heterogeneous(&specs, options).expect("valid");
            let batch = vec![
                BitVec::from_indices(8, &[0]),
                BitVec::from_indices(6, &[0]),
                BitVec::from_indices(8, &[4]),
                BitVec::from_indices(6, &[3]),
            ];
            let preds = pool.serve(&batch).expect("drains");
            let shards: Vec<usize> = preds.iter().map(|p| p.shard).collect();
            // Width 8 → shard 0 only; width 6 → shard 1 only.
            assert_eq!(shards, vec![0, 1, 0, 1], "{policy:?}");
        }
    }

    #[test]
    fn latency_aware_sends_more_to_the_wide_bus_shard() {
        // Shard 0: 2 beats/datapoint (4-bit bus). Shard 1: 4
        // beats/datapoint (2-bit bus). LatencyAware levels queued beats,
        // so the wide shard absorbs ~2× the requests; RoundRobin
        // alternates blindly and drains slower.
        let specs = hetero_specs();
        let makespan = |policy: DispatchPolicy| {
            let mut options = ServeOptions::new(1);
            options.policy = policy;
            let mut pool = ShardPool::heterogeneous(&specs, options).expect("valid");
            let preds = pool.serve(&inputs(12)).expect("drains");
            let wide = preds.iter().filter(|p| p.shard == 0).count();
            (wide, pool.report().pool_cycles)
        };
        let (rr_wide, rr_cycles) = makespan(DispatchPolicy::RoundRobin);
        let (la_wide, la_cycles) = makespan(DispatchPolicy::LatencyAware);
        assert_eq!(rr_wide, 6);
        assert!(la_wide > rr_wide, "LatencyAware wide-shard share {la_wide}");
        assert!(
            la_cycles < rr_cycles,
            "LatencyAware {la_cycles} !< RoundRobin {rr_cycles}"
        );
    }

    #[test]
    fn weights_bias_dispatch_on_equal_designs() {
        let specs = vec![ShardSpec::new(accel()), ShardSpec::new(accel()).weight(3)];
        let mut options = ServeOptions::new(1);
        options.policy = DispatchPolicy::LeastQueued;
        let mut pool = ShardPool::heterogeneous(&specs, options).expect("valid");
        let preds = pool.serve(&inputs(8)).expect("drains");
        let to_heavy = preds.iter().filter(|p| p.shard == 1).count();
        assert_eq!(to_heavy, 6, "weight-3 shard absorbs 3/4 of the batch");
    }

    #[test]
    fn heterogeneous_per_shard_backends_are_bit_identical() {
        // One cycle-accurate shard and one turbo shard of the *same*
        // design in one pool: every prediction, class sum, latency and
        // report entry matches a fully cycle-accurate pool.
        let xs = inputs(17);
        let run = |backends: [EngineBackend; 2]| {
            let specs = vec![
                ShardSpec::new(accel()).backend(backends[0]),
                ShardSpec::new(accel()).backend(backends[1]),
            ];
            let mut options = ServeOptions::new(1);
            options.capture_class_sums = true;
            let mut pool = ShardPool::heterogeneous(&specs, options).expect("valid");
            let preds = pool.serve(&xs).expect("drains");
            (preds, pool.report())
        };
        let all_cycle = run([EngineBackend::CycleAccurate, EngineBackend::CycleAccurate]);
        let mixed = run([EngineBackend::CycleAccurate, EngineBackend::Turbo]);
        let all_turbo = run([EngineBackend::Turbo, EngineBackend::Turbo]);
        assert_eq!(mixed, all_cycle);
        assert_eq!(all_turbo, all_cycle);
    }

    #[test]
    fn shard_stats_track_dispatched_work_per_shard() {
        let a = accel(); // 2 beats/datapoint
        let mut pool = ShardPool::new(&a, 2).expect("valid");
        assert!(pool
            .shard_stats()
            .iter()
            .all(|s| s.queued_beats == 0 && s.flushes_served == 0 && s.ii_samples == 0));
        pool.serve(&inputs(6)).expect("drains");
        let stats = pool.shard_stats();
        assert_eq!(stats.len(), 2);
        // Round-robin: 3 requests × 2 beats to each shard, one flush each.
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.shard, i);
            assert_eq!(s.queued_beats, 6, "{s:?}");
            assert_eq!(s.flushes_served, 1, "{s:?}");
            // 3 results per shard → 2 observed result-to-result gaps.
            assert_eq!(s.ii_samples, 2, "{s:?}");
            assert!(s.ii_cycles > 0, "{s:?}");
        }
    }

    #[test]
    fn shard_stats_attribute_consolidated_flushes_to_one_shard() {
        let a = accel();
        let mut pool = ShardPool::with_options(&a, ServeOptions::turbo(4)).expect("valid");
        pool.serve(&inputs(12)).expect("infallible");
        let stats = pool.shard_stats();
        // The whole flush consolidated onto shard 0: 12 × 2 beats there,
        // nothing anywhere else.
        assert_eq!(stats[0].queued_beats, 24);
        assert_eq!(stats[0].flushes_served, 1);
        for s in &stats[1..] {
            assert_eq!((s.queued_beats, s.flushes_served), (0, 0), "{s:?}");
        }
    }

    #[test]
    fn heterogeneous_replicated_design_matches_homogeneous_pool() {
        // Two specs replicating one design == the homogeneous 2-shard
        // pool, observation for observation.
        let a = accel();
        let xs = inputs(9);
        let mut homo = ShardPool::new(&a, 2).expect("valid");
        let homo_preds = homo.serve(&xs).expect("drains");
        let specs = vec![ShardSpec::new(a.clone()), ShardSpec::new(a.clone())];
        let mut hetero = ShardPool::heterogeneous(&specs, ServeOptions::new(2)).expect("valid");
        let hetero_preds = hetero.serve(&xs).expect("drains");
        assert_eq!(hetero_preds, homo_preds);
        assert_eq!(hetero.report(), homo.report());
    }

    /// Serializes panic-hook swaps across tests (the hook is process
    /// state) and silences the stderr spew from injected worker panics.
    static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let _guard = HOOK_LOCK.lock().unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = catch_unwind(AssertUnwindSafe(f));
        std::panic::set_hook(prev);
        match result {
            Ok(value) => value,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    use crate::fault::FaultEvent;
    use crate::FaultKind;

    #[test]
    fn empty_fault_plan_matches_the_classic_pool() {
        let a = accel();
        let xs = inputs(13);
        let mut classic = ShardPool::new(&a, 3).expect("valid");
        let expected = classic.serve(&xs).expect("drains");
        let mut resilient =
            ShardPool::with_fault_plan(&a, ServeOptions::new(3), FaultPlan::none()).expect("valid");
        assert!(resilient.resilient());
        let got = resilient.serve(&xs).expect("drains");
        assert_eq!(got, expected);
        assert!(resilient.health_log().is_empty());
        assert_eq!(resilient.healthy_shards(), 3);
    }

    #[test]
    fn injected_panic_redirects_work_and_quarantines_the_shard() {
        with_quiet_panics(|| {
            let a = accel();
            let xs = inputs(8);
            let expected: Vec<usize> = xs
                .iter()
                .map(|x| tsetlin::tm::argmax(&a.reference_class_sums(x)))
                .collect();
            let plan = FaultPlan::from_events(vec![FaultEvent {
                shard: 0,
                at_request: 0,
                kind: FaultKind::Panic,
            }]);
            let mut pool =
                ShardPool::with_fault_plan(&a, ServeOptions::new(2), plan).expect("valid");
            let preds = pool.serve(&xs).expect("the survivor absorbs the slice");
            // Zero drops, correct winners, and nothing served by the
            // shard that died before accepting its slice.
            assert_eq!(preds.len(), xs.len());
            let winners: Vec<usize> = preds.iter().map(|p| p.winner).collect();
            assert_eq!(winners, expected);
            assert!(preds.iter().all(|p| p.shard == 1));
            assert_eq!(pool.shard_health(0), ShardHealth::Quarantined);
            assert_eq!(pool.shard_health(1), ShardHealth::Healthy);
            let log = pool.health_log();
            assert_eq!(log.len(), 1);
            assert_eq!(
                (log[0].shard, log[0].from, log[0].to, log[0].cause),
                (0, ShardHealth::Healthy, ShardHealth::Quarantined, "panic")
            );
        });
    }

    #[test]
    fn corrupted_results_are_discarded_and_recomputed() {
        let a = accel();
        let xs = inputs(10);
        let expected: Vec<usize> = xs
            .iter()
            .map(|x| tsetlin::tm::argmax(&a.reference_class_sums(x)))
            .collect();
        let plan = FaultPlan::from_events(vec![FaultEvent {
            shard: 1,
            at_request: 0,
            kind: FaultKind::CorruptSum,
        }]);
        let mut pool = ShardPool::with_fault_plan(&a, ServeOptions::new(2), plan).expect("valid");
        let preds = pool.serve(&xs).expect("redirected");
        let winners: Vec<usize> = preds.iter().map(|p| p.winner).collect();
        // The corrupted slice was thrown away whole — every served
        // winner came from a clean run, so they all match the reference.
        assert_eq!(winners, expected);
        assert!(preds.iter().all(|p| p.shard == 0));
        assert_eq!(pool.shard_health(1), ShardHealth::Quarantined);
    }

    #[test]
    fn soft_faults_degrade_without_losing_work() {
        let a = accel();
        let xs = inputs(6);
        let plan = FaultPlan::from_events(vec![FaultEvent {
            shard: 0,
            at_request: 0,
            kind: FaultKind::Stall { cycles: 500 },
        }]);
        let mut pool = ShardPool::with_fault_plan(&a, ServeOptions::new(2), plan).expect("valid");
        let preds = pool.serve(&xs).expect("stalls only delay");
        assert_eq!(preds.len(), xs.len());
        // The stalled shard still served its slice — degraded, not
        // quarantined — and one clean flush heals it.
        assert!(preds.iter().any(|p| p.shard == 0));
        assert_eq!(pool.shard_health(0), ShardHealth::Degraded);
        pool.serve(&inputs(4)).expect("clean flush");
        assert_eq!(pool.shard_health(0), ShardHealth::Healthy);
    }

    #[test]
    fn killing_the_only_shard_is_a_typed_quarantine_error() {
        with_quiet_panics(|| {
            let a = accel();
            let mut pool =
                ShardPool::with_fault_plan(&a, ServeOptions::new(1), FaultPlan::kill_shard(0, 0))
                    .expect("valid");
            let err = pool.serve(&inputs(4)).unwrap_err();
            assert_eq!(err, ServeError::ShardQuarantined { shard: 0 });
        });
    }

    #[test]
    fn killing_every_shard_leaves_no_healthy_capacity() {
        with_quiet_panics(|| {
            let a = accel();
            let plan = FaultPlan::kill_shard(0, 0).merged(&FaultPlan::kill_shard(1, 0));
            let mut pool =
                ShardPool::with_fault_plan(&a, ServeOptions::new(2), plan).expect("valid");
            let err = pool.serve(&inputs(6)).unwrap_err();
            assert_eq!(err, ServeError::NoHealthyShard { width: 8 });
            assert_eq!(pool.healthy_shards(), 0);
        });
    }

    #[test]
    fn killed_shard_mid_trace_loses_no_requests() {
        with_quiet_panics(|| {
            let a = accel();
            let xs = inputs(32);
            let mut reference = ShardPool::new(&a, 4).expect("valid");
            let expected: Vec<usize> = reference
                .serve(&xs)
                .expect("drains")
                .iter()
                .map(|p| p.winner)
                .collect();
            // Shard 1 dies once it has attempted 4 requests — mid-trace,
            // with work already served and more still to come.
            let mut pool =
                ShardPool::with_fault_plan(&a, ServeOptions::new(4), FaultPlan::kill_shard(1, 4))
                    .expect("valid");
            let mut winners = Vec::new();
            for window in xs.chunks(8) {
                winners.extend(
                    pool.serve(window)
                        .expect("survivors absorb")
                        .iter()
                        .map(|p| p.winner),
                );
            }
            assert_eq!(winners, expected);
            assert_eq!(pool.shard_health(1), ShardHealth::Quarantined);
            assert_eq!(pool.healthy_shards(), 3);
        });
    }

    #[test]
    fn quarantined_shard_recovers_through_a_half_open_probe() {
        with_quiet_panics(|| {
            let a = accel();
            let plan = FaultPlan::from_events(vec![FaultEvent {
                shard: 0,
                at_request: 0,
                kind: FaultKind::Panic,
            }]);
            let mut pool =
                ShardPool::with_fault_plan(&a, ServeOptions::new(2), plan).expect("valid");
            pool.serve(&inputs(4)).expect("redirected");
            assert_eq!(pool.shard_health(0), ShardHealth::Quarantined);
            // Cooldown counts flushes, not requests: after
            // PROBE_COOLDOWN_FLUSHES the breaker half-opens and a clean
            // probe slice closes it.
            for _ in 0..crate::PROBE_COOLDOWN_FLUSHES {
                pool.serve(&inputs(4)).expect("drains");
            }
            assert_eq!(pool.shard_health(0), ShardHealth::Healthy);
            let preds = pool.serve(&inputs(4)).expect("drains");
            assert!(
                preds.iter().any(|p| p.shard == 0),
                "recovered shard rejoins"
            );
            let states: Vec<(ShardHealth, ShardHealth)> = pool
                .health_log()
                .iter()
                .filter(|t| t.shard == 0)
                .map(|t| (t.from, t.to))
                .collect();
            assert_eq!(
                states,
                vec![
                    (ShardHealth::Healthy, ShardHealth::Quarantined),
                    (ShardHealth::Quarantined, ShardHealth::Probing),
                    (ShardHealth::Probing, ShardHealth::Healthy),
                ]
            );
        });
    }

    #[test]
    fn operator_quarantine_brownouts_admission() {
        let a = accel();
        let mut pool = ShardPool::new(&a, 2).expect("valid");
        assert!(!pool.resilient());
        pool.quarantine_shard(1);
        assert!(pool.resilient());
        assert_eq!(pool.healthy_shards(), 1);
        assert!(pool.check_healthy(8).is_ok());
        pool.quarantine_shard(0);
        assert_eq!(
            pool.check_healthy(8).unwrap_err(),
            ServeError::NoHealthyShard { width: 8 }
        );
    }

    #[test]
    fn chaos_replay_is_bit_identical() {
        with_quiet_panics(|| {
            let a = accel();
            let xs = inputs(48);
            let run = |threads: usize| {
                let plan = FaultPlan::seeded(7, 2, 24, 2);
                let mut options = ServeOptions::new(2);
                options.threads = Some(threads);
                let mut pool = ShardPool::with_fault_plan(&a, options, plan).expect("valid");
                let mut preds = Vec::new();
                for window in xs.chunks(8) {
                    preds.extend(pool.serve(window).expect("survivors absorb"));
                }
                (preds, pool.health_log().to_vec())
            };
            let (preds_a, log_a) = run(1);
            let (preds_b, log_b) = run(8);
            assert_eq!(preds_a, preds_b);
            assert_eq!(log_a, log_b);
            assert!(!log_a.is_empty(), "a seeded plan injects something");
        });
    }

    #[test]
    fn fault_seed_option_arms_the_injector() {
        let a = accel();
        let mut options = ServeOptions::new(2);
        options.fault_seed = Some(11);
        let pool = ShardPool::with_options(&a, options).expect("valid");
        assert!(pool.resilient());
    }

    /// A partitionable twin of [`accel`]: the same 8-feature, 2-packet
    /// geometry with four clauses per class, so the compile pipeline can
    /// cut it into two clause-range parts.
    fn wide_accel() -> CompiledAccelerator {
        let shape = AccelShape {
            bus_width: 4,
            features: 8,
            classes: 2,
            clauses_per_class: 4,
        };
        let w0 = vec![
            Cube::from_lits([Lit::pos(0)]),
            Cube::from_lits([Lit::pos(1)]),
            Cube::one(),
            Cube::from_lits([Lit::pos(2)]),
            Cube::from_lits([Lit::pos(3)]),
            Cube::one(),
            Cube::from_lits([Lit::pos(0)]),
            Cube::from_lits([Lit::pos(1)]),
        ];
        let w1 = vec![
            Cube::one(),
            Cube::one(),
            Cube::from_lits([Lit::pos(0)]),
            Cube::one(),
            Cube::one(),
            Cube::from_lits([Lit::pos(1)]),
            Cube::one(),
            Cube::from_lits([Lit::pos(3)]),
        ];
        CompiledAccelerator::from_window_cubes(shape, &[w0, w1], Sharing::Enabled)
    }

    fn partitioned_specs(a: &CompiledAccelerator, k: usize, group: u32) -> Vec<ShardSpec> {
        use matador_sim::{CompileOptions, CompilePipeline};
        let plan = CompilePipeline::new(CompileOptions::default().with_partitions(k)).partition(a);
        ShardSpec::partitioned(plan, group)
    }

    #[test]
    fn partitioned_group_is_bit_identical_to_monolithic() {
        let a = wide_accel();
        let xs = inputs(9);
        let mono_specs = vec![ShardSpec::new(a.clone())];
        let mut options = ServeOptions::new(1);
        options.capture_class_sums = true;
        let mut mono = ShardPool::heterogeneous(&mono_specs, options).expect("valid");
        let expected = mono.serve(&xs).expect("drains");

        let specs = partitioned_specs(&a, 2, 0);
        assert_eq!(specs.len(), 2, "cpc 4 splits into two parts");
        let mut options = ServeOptions::new(2);
        options.capture_class_sums = true;
        let mut pool = ShardPool::heterogeneous(&specs, options).expect("valid");
        assert_eq!(pool.units(), &[vec![0, 1]]);
        let preds = pool.serve(&xs).expect("drains");
        // Observation-for-observation identical: winners, merged class
        // sums, latency and completion stamps, and the lead member as
        // the shard attribution (the monolithic pool's only shard is 0,
        // which is also the group's lead).
        assert_eq!(preds, expected);
    }

    #[test]
    fn partition_group_coexists_with_standalone_shards() {
        let a = wide_accel();
        let six = six_feature_accel();
        let mut specs = partitioned_specs(&a, 2, 0);
        specs.push(ShardSpec::new(six.clone()));
        let mut pool = ShardPool::heterogeneous(&specs, ServeOptions::new(3)).expect("valid");
        assert_eq!(pool.units(), &[vec![0, 1], vec![2]]);
        let wide = inputs(4);
        let narrow: Vec<BitVec> = (0..3)
            .map(|i| {
                if i % 2 == 0 {
                    BitVec::from_indices(6, &[0])
                } else {
                    BitVec::zeros(6)
                }
            })
            .collect();
        for x in wide.iter().chain(&narrow) {
            pool.submit(x).expect("admitted");
        }
        let preds = pool.flush().expect("drains");
        assert_eq!(preds.len(), 7);
        // Width routes each request: 8-feature inputs to the group
        // (attributed to its lead), 6-feature inputs to the standalone
        // shard — winners matching each design's own reference.
        for (p, x) in preds[..4].iter().zip(&wide) {
            assert_eq!(p.shard, 0);
            assert_eq!(p.winner, tsetlin::tm::argmax(&a.reference_class_sums(x)));
        }
        for (p, x) in preds[4..].iter().zip(&narrow) {
            assert_eq!(p.shard, 2);
            assert_eq!(p.winner, tsetlin::tm::argmax(&six.reference_class_sums(x)));
        }
    }

    #[test]
    fn grouped_flush_spread_counts_units_not_shards() {
        let a = wide_accel();
        let mut specs = partitioned_specs(&a, 2, 0);
        specs.extend(partitioned_specs(&a, 2, 1));
        let pool = ShardPool::heterogeneous(&specs, ServeOptions::new(4)).expect("valid");
        assert_eq!(pool.shards(), 4);
        assert_eq!(pool.units().len(), 2);
        assert_eq!(pool.flush_spread(16), 2);
    }

    #[test]
    fn partitioned_member_panic_redirects_to_the_sibling_group() {
        with_quiet_panics(|| {
            let a = wide_accel();
            let xs = inputs(6);
            let expected: Vec<usize> = xs
                .iter()
                .map(|x| tsetlin::tm::argmax(&a.reference_class_sums(x)))
                .collect();
            // Two replica groups of the same partitioned design; one
            // member of group 0 panics on its first slice.
            let mut specs = partitioned_specs(&a, 2, 0);
            specs.extend(partitioned_specs(&a, 2, 1));
            let plan = FaultPlan::from_events(vec![FaultEvent {
                shard: 1,
                at_request: 0,
                kind: FaultKind::Panic,
            }]);
            let mut pool =
                ShardPool::heterogeneous_with_fault_plan(&specs, ServeOptions::new(4), plan)
                    .expect("valid");
            let preds = pool.serve(&xs).expect("a sibling unit absorbs the slice");
            // Zero drops, correct winners: the failed unit's whole slice
            // was discarded (a lone partial sum is meaningless) and
            // re-served by a full unit.
            assert_eq!(preds.len(), xs.len());
            let winners: Vec<usize> = preds.iter().map(|p| p.winner).collect();
            assert_eq!(winners, expected);
            assert!(!pool.health_log().is_empty(), "the panic was observed");
        });
    }

    #[test]
    fn partitioned_group_with_no_sibling_fails_typed_when_a_member_dies() {
        with_quiet_panics(|| {
            let a = wide_accel();
            let specs = partitioned_specs(&a, 2, 0);
            let plan = FaultPlan::kill_shard(1, 0);
            let mut pool =
                ShardPool::heterogeneous_with_fault_plan(&specs, ServeOptions::new(2), plan)
                    .expect("valid");
            // The only unit serving width 8 has a permanently dead
            // member: the flush must fail typed, never spin.
            let err = pool.serve(&inputs(4)).unwrap_err();
            assert!(
                matches!(
                    err,
                    ServeError::ShardQuarantined { shard: 1 }
                        | ServeError::NoHealthyShard { width: 8 }
                ),
                "got {err:?}"
            );
        });
    }

    #[test]
    fn partitioned_serving_is_thread_count_invariant() {
        let a = wide_accel();
        let xs = inputs(13);
        let run = |threads: usize| {
            let specs = partitioned_specs(&a, 2, 0);
            let mut options = ServeOptions::new(2);
            options.capture_class_sums = true;
            options.threads = Some(threads);
            let mut pool = ShardPool::heterogeneous(&specs, options).expect("valid");
            pool.serve(&xs).expect("drains")
        };
        assert_eq!(run(1), run(8));
    }
}
