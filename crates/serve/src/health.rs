//! Per-shard health tracking: a circuit breaker over the shard pool.
//!
//! Each shard moves through a four-state machine driven by the faults
//! the pool detects while flushing:
//!
//! ```text
//!             soft fault                    hard fault
//!   Healthy ─────────────▶ Degraded ──────────────────▶ Quarantined
//!      ▲  ▲                   │   ▲                          │
//!      │  │   clean flush     │   │ soft fault               │ cooldown
//!      │  └───────────────────┘   │                          │ expires
//!      │                          │                          ▼
//!      └────────────────────── Probing ◀────────────────────┘
//!            clean flush          │ any fault
//!                                 └────────▶ Quarantined (again)
//! ```
//!
//! *Soft* faults (injected stalls/queue delays, observed-II outliers)
//! only cost time: the shard is marked **Degraded** — still eligible
//! for traffic, but flagged — and recovers to **Healthy** after one
//! clean flush. *Hard* faults (worker panics, corrupted class sums,
//! engine errors, crashes) lose a slice: the shard is **Quarantined**
//! — the circuit breaker opens, dispatch stops routing to it — for a
//! fixed cooldown measured in pool flushes. When the cooldown expires
//! the breaker goes half-open: the shard becomes **Probing**, eligible
//! again for ordinary traffic, and the next flush decides — clean
//! closes the breaker (Healthy), any fault re-opens it (Quarantined,
//! fresh cooldown). A permanently crashed shard therefore oscillates
//! quarantine → probe → failed probe → quarantine forever, never
//! serving a reply.
//!
//! Every transition is appended to an in-memory log ([`HealthTracker::log`])
//! and published to the `matador_shard_health` gauge (one series per
//! shard). The log is part of the deterministic replay surface: the
//! chaos tests assert it is bit-identical across thread counts.

use matador_obs::{Gauge, Registry};
use std::sync::Arc;

/// How many flushes a quarantined shard sits out before the breaker
/// goes half-open and a probe is allowed.
pub const PROBE_COOLDOWN_FLUSHES: u64 = 2;

/// How many consecutive clean flushes a degraded shard needs to be
/// declared healthy again.
const DEGRADED_RECOVERY_FLUSHES: u32 = 1;

/// Health of one shard, as seen by the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally.
    Healthy,
    /// Recently hit by a soft fault (stall, queue delay, II outlier):
    /// still eligible for traffic, flagged for observation.
    Degraded,
    /// Circuit breaker open: dispatch routes nothing to this shard
    /// until the cooldown expires.
    Quarantined,
    /// Half-open: cooldown expired, the next flush may route traffic
    /// here as a probe. Clean → Healthy; any fault → Quarantined.
    Probing,
}

impl ShardHealth {
    /// Stable label for logs and metric series.
    pub fn as_label(&self) -> &'static str {
        match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Degraded => "degraded",
            ShardHealth::Quarantined => "quarantined",
            ShardHealth::Probing => "probing",
        }
    }

    /// Value published on the `matador_shard_health` gauge: 0 healthy,
    /// 1 degraded, 2 probing, 3 quarantined (higher = worse).
    pub fn as_gauge_value(&self) -> i64 {
        match self {
            ShardHealth::Healthy => 0,
            ShardHealth::Degraded => 1,
            ShardHealth::Probing => 2,
            ShardHealth::Quarantined => 3,
        }
    }

    /// Whether dispatch may route requests to a shard in this state.
    /// Everything but an open breaker is eligible — probing *is*
    /// routing ordinary traffic and watching what happens.
    pub fn eligible(&self) -> bool {
        !matches!(self, ShardHealth::Quarantined)
    }
}

/// One edge of the health state machine, for the transition log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// The shard that moved.
    pub shard: usize,
    /// Pool flush sequence number at which it moved (1-based; flush 0
    /// means "before any flush", used by operator-forced transitions).
    pub flush: u64,
    /// State before.
    pub from: ShardHealth,
    /// State after.
    pub to: ShardHealth,
    /// Why: a stable label such as `"panic"`, `"corrupt_sum"`,
    /// `"stall"`, `"ii_outlier"`, `"engine_error"`, `"clean"`,
    /// `"cooldown"`, `"operator"`.
    pub cause: &'static str,
}

/// The pool-owned circuit breaker: one state per shard, a transition
/// log, and the `matador_shard_health` gauges.
#[derive(Debug)]
pub struct HealthTracker {
    states: Vec<ShardHealth>,
    /// Consecutive clean flushes while Degraded (recovery counter).
    clean_streak: Vec<u32>,
    /// Remaining cooldown flushes while Quarantined.
    cooldown: Vec<u64>,
    /// Count of shards not currently Healthy — the hot-path fast-out.
    unhealthy: usize,
    /// Pool flush sequence, advanced by [`HealthTracker::begin_flush`].
    flush_seq: u64,
    log: Vec<HealthTransition>,
    gauges: Vec<Arc<Gauge>>,
}

impl HealthTracker {
    pub(crate) fn new(shards: usize) -> Self {
        let gauges = (0..shards)
            .map(|s| {
                Registry::global().gauge(
                    "matador_shard_health",
                    &format!("shard=\"{s}\""),
                    "Shard health state: 0 healthy, 1 degraded, 2 probing, 3 quarantined.",
                )
            })
            .collect::<Vec<_>>();
        for g in &gauges {
            g.set(ShardHealth::Healthy.as_gauge_value());
        }
        HealthTracker {
            states: vec![ShardHealth::Healthy; shards],
            clean_streak: vec![0; shards],
            cooldown: vec![0; shards],
            unhealthy: 0,
            flush_seq: 0,
            log: Vec::new(),
            gauges,
        }
    }

    /// Current state of one shard.
    pub fn state(&self, shard: usize) -> ShardHealth {
        self.states[shard]
    }

    /// Current state of every shard, by index.
    pub fn states(&self) -> &[ShardHealth] {
        &self.states
    }

    /// The full transition log, oldest first. Deterministic: same
    /// fault plan + same request stream ⇒ same log, at any thread
    /// count.
    pub fn log(&self) -> &[HealthTransition] {
        &self.log
    }

    /// Whether every shard is Healthy — the cheap gate the hot path
    /// checks before doing any health work.
    pub fn all_healthy(&self) -> bool {
        self.unhealthy == 0
    }

    /// Whether dispatch may route to `shard` right now.
    pub fn eligible(&self, shard: usize) -> bool {
        self.states[shard].eligible()
    }

    /// Number of shards currently eligible for traffic.
    pub fn eligible_shards(&self) -> usize {
        if self.unhealthy == 0 {
            self.states.len()
        } else {
            self.states.iter().filter(|s| s.eligible()).count()
        }
    }

    fn transition(&mut self, shard: usize, to: ShardHealth, cause: &'static str) {
        let from = self.states[shard];
        if from == to {
            return;
        }
        if from == ShardHealth::Healthy {
            self.unhealthy += 1;
        }
        if to == ShardHealth::Healthy {
            self.unhealthy -= 1;
        }
        self.states[shard] = to;
        self.gauges[shard].set(to.as_gauge_value());
        self.log.push(HealthTransition {
            shard,
            flush: self.flush_seq,
            from,
            to,
            cause,
        });
    }

    /// Opens a new flush: advances the sequence number and walks
    /// quarantine cooldowns, half-opening breakers whose cooldown
    /// expired (Quarantined → Probing). Called once per pool flush,
    /// before dispatch plans anything.
    pub(crate) fn begin_flush(&mut self) {
        self.flush_seq += 1;
        if self.unhealthy == 0 {
            return;
        }
        for shard in 0..self.states.len() {
            if self.states[shard] == ShardHealth::Quarantined {
                self.cooldown[shard] = self.cooldown[shard].saturating_sub(1);
                if self.cooldown[shard] == 0 {
                    self.transition(shard, ShardHealth::Probing, "cooldown");
                }
            }
        }
    }

    /// Records a soft fault on `shard` (stall, queue delay, observed-II
    /// outlier). Healthy → Degraded; a fault during a probe re-opens
    /// the breaker — half-open tolerates nothing.
    pub(crate) fn note_soft(&mut self, shard: usize, cause: &'static str) {
        match self.states[shard] {
            ShardHealth::Healthy => self.transition(shard, ShardHealth::Degraded, cause),
            ShardHealth::Probing => self.quarantine(shard, cause),
            ShardHealth::Degraded | ShardHealth::Quarantined => {}
        }
        self.clean_streak[shard] = 0;
    }

    /// Records a hard fault on `shard` (panic, corrupted sum, engine
    /// error, crash): the breaker opens from any state.
    pub(crate) fn note_hard(&mut self, shard: usize, cause: &'static str) {
        self.quarantine(shard, cause);
    }

    fn quarantine(&mut self, shard: usize, cause: &'static str) {
        self.cooldown[shard] = PROBE_COOLDOWN_FLUSHES;
        self.clean_streak[shard] = 0;
        self.transition(shard, ShardHealth::Quarantined, cause);
    }

    /// Records a clean (fault-free) flush slice on `shard`. A probe
    /// that comes back clean closes the breaker; a degraded shard
    /// recovers after [`DEGRADED_RECOVERY_FLUSHES`] clean flushes.
    pub(crate) fn note_clean(&mut self, shard: usize) {
        match self.states[shard] {
            ShardHealth::Probing => self.transition(shard, ShardHealth::Healthy, "clean"),
            ShardHealth::Degraded => {
                self.clean_streak[shard] += 1;
                if self.clean_streak[shard] >= DEGRADED_RECOVERY_FLUSHES {
                    self.transition(shard, ShardHealth::Healthy, "clean");
                }
            }
            ShardHealth::Healthy | ShardHealth::Quarantined => {}
        }
    }

    /// Operator override: force `shard` into quarantine (e.g. for a
    /// planned drain). Same breaker semantics — it probes its way back
    /// after the cooldown.
    pub(crate) fn force_quarantine(&mut self, shard: usize) {
        self.quarantine(shard, "operator");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_fault_degrades_and_one_clean_flush_recovers() {
        let mut t = HealthTracker::new(2);
        assert!(t.all_healthy());
        t.begin_flush();
        t.note_soft(0, "stall");
        assert_eq!(t.state(0), ShardHealth::Degraded);
        assert!(t.eligible(0), "degraded shards still take traffic");
        assert!(!t.all_healthy());
        t.begin_flush();
        t.note_clean(0);
        assert_eq!(t.state(0), ShardHealth::Healthy);
        assert!(t.all_healthy());
    }

    #[test]
    fn hard_fault_quarantines_then_probes_then_recovers() {
        let mut t = HealthTracker::new(2);
        t.begin_flush();
        t.note_hard(1, "panic");
        assert_eq!(t.state(1), ShardHealth::Quarantined);
        assert!(!t.eligible(1));
        assert_eq!(t.eligible_shards(), 1);
        // Cooldown: PROBE_COOLDOWN_FLUSHES flushes sit out.
        t.begin_flush();
        assert_eq!(t.state(1), ShardHealth::Quarantined);
        t.begin_flush();
        assert_eq!(t.state(1), ShardHealth::Probing);
        assert!(t.eligible(1), "half-open breaker routes a probe");
        // Clean probe closes the breaker.
        t.note_clean(1);
        assert_eq!(t.state(1), ShardHealth::Healthy);
        assert!(t.all_healthy());
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let mut t = HealthTracker::new(1);
        t.begin_flush();
        t.note_hard(0, "crash");
        t.begin_flush();
        t.begin_flush();
        assert_eq!(t.state(0), ShardHealth::Probing);
        t.begin_flush();
        t.note_hard(0, "crash");
        assert_eq!(t.state(0), ShardHealth::Quarantined);
        // And a soft fault during a later probe also re-opens it.
        t.begin_flush();
        t.begin_flush();
        assert_eq!(t.state(0), ShardHealth::Probing);
        t.note_soft(0, "stall");
        assert_eq!(t.state(0), ShardHealth::Quarantined);
    }

    #[test]
    fn transition_log_records_every_edge_with_cause() {
        let mut t = HealthTracker::new(2);
        t.begin_flush();
        t.note_hard(0, "corrupt_sum");
        t.begin_flush();
        t.begin_flush();
        t.note_clean(0);
        let log = t.log();
        assert_eq!(log.len(), 3);
        assert_eq!(
            (log[0].from, log[0].to, log[0].cause, log[0].flush),
            (
                ShardHealth::Healthy,
                ShardHealth::Quarantined,
                "corrupt_sum",
                1
            )
        );
        assert_eq!(
            (log[1].from, log[1].to, log[1].cause, log[1].flush),
            (
                ShardHealth::Quarantined,
                ShardHealth::Probing,
                "cooldown",
                3
            )
        );
        assert_eq!(
            (log[2].from, log[2].to, log[2].cause, log[2].flush),
            (ShardHealth::Probing, ShardHealth::Healthy, "clean", 3)
        );
    }

    #[test]
    fn operator_quarantine_uses_the_same_breaker() {
        let mut t = HealthTracker::new(3);
        t.force_quarantine(2);
        assert_eq!(t.state(2), ShardHealth::Quarantined);
        assert_eq!(t.log()[0].cause, "operator");
        assert_eq!(t.log()[0].flush, 0);
    }

    #[test]
    fn labels_and_gauge_values_are_stable() {
        assert_eq!(ShardHealth::Healthy.as_label(), "healthy");
        assert_eq!(ShardHealth::Degraded.as_label(), "degraded");
        assert_eq!(ShardHealth::Probing.as_label(), "probing");
        assert_eq!(ShardHealth::Quarantined.as_label(), "quarantined");
        assert_eq!(ShardHealth::Healthy.as_gauge_value(), 0);
        assert_eq!(ShardHealth::Quarantined.as_gauge_value(), 3);
        assert!(ShardHealth::Probing.eligible());
        assert!(!ShardHealth::Quarantined.eligible());
    }
}
