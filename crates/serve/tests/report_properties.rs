//! Property tests for [`percentile_per_mille`], the nearest-rank
//! statistic behind every latency percentile this workspace quotes
//! (`ThroughputReport::merge`, the load generator's tail artifact, the
//! bench gates). The edge ranks are where nearest-rank implementations
//! go wrong — p0 must clamp to the minimum rather than index before the
//! array, p1000 must be the maximum rather than one past it, and the
//! whole family must be monotone in both the sample set and the
//! per-mille argument.

use matador_serve::percentile_per_mille;
use proptest::prelude::*;

proptest! {
    /// Any per-mille of the empty set is 0 — the documented sentinel.
    #[test]
    fn empty_samples_always_quote_zero(per_mille in 0u32..=1000) {
        prop_assert_eq!(percentile_per_mille(&[], per_mille), 0);
    }

    /// A single sample is every percentile of itself, p0 through p1000.
    #[test]
    fn single_sample_is_every_percentile(value in any::<u64>(), per_mille in 0u32..=1000) {
        prop_assert_eq!(percentile_per_mille(&[value], per_mille), value);
    }

    /// All-equal samples quote that value at every rank and every length.
    #[test]
    fn all_equal_samples_quote_the_value(
        value in any::<u64>(),
        len in 1usize..64,
        per_mille in 0u32..=1000,
    ) {
        let sorted = vec![value; len];
        prop_assert_eq!(percentile_per_mille(&sorted, per_mille), value);
    }

    /// The extreme ranks hit the extreme order statistics exactly: p0
    /// and p1 clamp to the minimum (rank is floored at 1, never 0) and
    /// p1000 is the maximum — for any non-empty sorted sample set.
    #[test]
    fn extreme_ranks_hit_min_and_max(mut samples in proptest::collection::vec(any::<u64>(), 1..64)) {
        samples.sort_unstable();
        let (min, max) = (samples[0], *samples.last().expect("non-empty"));
        prop_assert_eq!(percentile_per_mille(&samples, 0), min);
        prop_assert_eq!(percentile_per_mille(&samples, 1), min);
        prop_assert_eq!(percentile_per_mille(&samples, 999), max);
        prop_assert_eq!(percentile_per_mille(&samples, 1000), max);
    }

    /// p999 < p1000 requires at least 1000 samples: nearest-rank cannot
    /// distinguish sub-percent tails on small sets, so p999 of anything
    /// shorter is already the maximum.
    #[test]
    fn p999_is_max_below_a_thousand_samples(
        mut samples in proptest::collection::vec(any::<u64>(), 1..999),
    ) {
        samples.sort_unstable();
        prop_assert_eq!(
            percentile_per_mille(&samples, 999),
            *samples.last().expect("non-empty")
        );
    }

    /// Monotone in the rank: a higher per-mille never quotes a smaller
    /// value, and every quote is an actual sample between min and max.
    #[test]
    fn quotes_are_monotone_and_members(
        mut samples in proptest::collection::vec(any::<u64>(), 1..64),
        lo in 0u32..=1000,
        hi in 0u32..=1000,
    ) {
        samples.sort_unstable();
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let a = percentile_per_mille(&samples, lo);
        let b = percentile_per_mille(&samples, hi);
        prop_assert!(a <= b, "p{lo} = {a} > p{hi} = {b}");
        prop_assert!(samples.binary_search(&a).is_ok(), "p{lo} = {a} not a sample");
        prop_assert!(samples.binary_search(&b).is_ok(), "p{hi} = {b} not a sample");
    }
}
