//! Property tests for the bounded request queue's admission control:
//! a rejected [`RequestQueue::admit_block`] must be a pure no-op on the
//! queue's state — same pending contents, same id sequence, same
//! accepted count — no matter what interleaving of pushes, blocks and
//! drains preceded it, and no matter how absurd the rejected block size
//! is (up to `usize::MAX`, which must not overflow the depth check).
//! Only the rejection counter moves, by exactly one: that is the
//! documented backpressure accounting.

use matador_serve::queue::RequestQueue;
use matador_serve::ServeError;
use proptest::prelude::*;
use tsetlin::bits::BitVec;

/// Replays a random op sequence to land the queue in an arbitrary
/// reachable state. Ops: 0 = push, 1 = small admit_block, 2 = drain.
fn build_queue(capacity: usize, ops: &[usize]) -> RequestQueue {
    let mut q = RequestQueue::new(capacity).expect("positive depth");
    for &op in ops {
        match op % 3 {
            0 => {
                let _ = q.push(BitVec::zeros(4));
            }
            1 => {
                let _ = q.admit_block(2);
            }
            _ => {
                q.drain();
            }
        }
    }
    q
}

proptest! {
    #[test]
    fn rejected_admit_block_is_a_pure_no_op(
        capacity in 1usize..32,
        ops in proptest::collection::vec(0usize..3, 0..48),
        // 1..8 exercises ordinary overshoot; the top value maps to
        // usize::MAX so the depth check is also proven overflow-safe.
        overshoot in (1usize..9).prop_map(|x| if x == 8 { usize::MAX } else { x }),
    ) {
        let mut q = build_queue(capacity, &ops);
        let free = capacity - q.len();
        let n = free.saturating_add(overshoot);
        let before = q.clone();

        let err = q.admit_block(n).expect_err("block exceeds the free depth");
        prop_assert_eq!(err, ServeError::QueueFull { capacity });

        // Observable state is untouched: pending count, depth bound and
        // admission count are exactly the pre-rejection values, and the
        // rejection counter moved by exactly one.
        prop_assert_eq!(q.len(), before.len());
        prop_assert_eq!(q.capacity(), before.capacity());
        prop_assert_eq!(q.accepted(), before.accepted());
        prop_assert_eq!(q.rejected(), before.rejected() + 1);

        // The id sequence did not advance: the next admission on the
        // rejected queue hands out the same id the pre-rejection queue
        // would have.
        if free > 0 {
            let mut a = q.clone();
            let mut b = before.clone();
            prop_assert_eq!(
                a.push(BitVec::zeros(4)).expect("free depth"),
                b.push(BitVec::zeros(4)).expect("free depth")
            );
        } else {
            let mut a = q.clone();
            let mut b = before.clone();
            prop_assert_eq!(
                a.admit_block(0).expect("empty block always fits"),
                b.admit_block(0).expect("empty block always fits")
            );
        }

        // The pending FIFO is bit-identical, ids and inputs both.
        let mut before = before;
        prop_assert_eq!(q.drain(), before.drain());
    }

    #[test]
    fn admitted_block_matches_push_semantics(
        capacity in 1usize..32,
        ops in proptest::collection::vec(0usize..3, 0..48),
        fraction in 0u32..=100,
    ) {
        let mut q = build_queue(capacity, &ops);
        let free = capacity - q.len();
        let n = (free * fraction as usize) / 100;
        let accepted = q.accepted();
        let rejected = q.rejected();
        let len = q.len();

        let first = q.admit_block(n).expect("block fits the free depth");

        // Ids are the contiguous block `first..first + n`, continuing
        // the same monotonic sequence a run of pushes would have used,
        // and counters advance as if each input had been pushed and
        // drained — nothing enters the FIFO itself.
        prop_assert_eq!(q.accepted(), accepted + n as u64);
        prop_assert_eq!(q.rejected(), rejected);
        prop_assert_eq!(q.len(), len);
        if free > n {
            // still room: the next push picks up right after the block
            let next = q.push(BitVec::zeros(4)).expect("free depth");
            prop_assert_eq!(next, first + n as u64);
        }
    }
}
