//! # matador-obs — observability for the MATADOR serving stack
//!
//! A dependency-free metrics + tracing layer threaded through the
//! open-submission front-end, the shard pools and the turbo datapath:
//!
//! - [`metrics`]: sharded [`Counter`]s, [`Gauge`]s and fixed-shape log2
//!   [`Histogram`]s behind a [`Registry`], rendered as Prometheus text
//!   ([`Registry::render_prometheus`]) or captured as a structured
//!   [`Snapshot`] for the bench JSON artifacts.
//! - [`flight`]: a bounded ring-buffer [`FlightRecorder`] retaining the
//!   last *N* request [`Lifecycle`]s (submit → admit → batch → shard →
//!   reorder → deliver, stamped on the serving virtual clock).
//!
//! ## The contract with the serving stack
//!
//! Metrics are pure sinks: nothing in the serving stack ever reads a
//! metric to make a decision, so recording cannot perturb the replay
//! determinism the stack guarantees (`tests/*_determinism.rs`), and the
//! atomics-only record path keeps warmed engines allocation-free
//! (`crates/sim/tests/no_alloc.rs`). Recording defaults to **on**; set
//! `MATADOR_METRICS=0` (or call [`set_enabled`]`(false)`) to disable at
//! runtime, or build with the `noop` feature to compile every record
//! path down to a constant-false branch.
//!
//! ```
//! use matador_obs::Registry;
//!
//! matador_obs::set_enabled(true);
//! let requests = Registry::global().counter(
//!     "doc_requests_total",
//!     "tenant=\"0\"",
//!     "Requests seen, by tenant.",
//! );
//! requests.inc();
//! assert!(Registry::global().render_prometheus().contains("doc_requests_total"));
//! ```

pub mod flight;
pub mod metrics;

pub use flight::{FlightRecorder, Lifecycle, TraceId, DEFAULT_FLIGHT_CAPACITY};
pub use metrics::{
    enabled, set_enabled, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Sample,
    SampleValue, Snapshot,
};
