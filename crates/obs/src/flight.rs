//! Bounded ring-buffer flight recorder: the last *N* request lifecycles
//! with virtual-clock stamps, for post-mortem inspection when a serving
//! front hits a typed error or is dropped mid-incident.
//!
//! The recorder trades completeness for boundedness: a slot is reused as
//! soon as request `id + capacity` begins, and updates addressed to an
//! evicted id are silently ignored — exactly the behaviour a black box
//! needs (recent history wins, recording never blocks the datapath).
//! After construction every operation is allocation-free: a
//! [`Lifecycle`] is `Copy` and slots are written in place.

use crate::metrics::enabled;

/// Default number of request lifecycles a recorder retains.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// Opaque handle for one traced request, issued by
/// [`FlightRecorder::begin`] and threaded through the serving layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceId(u64);

impl TraceId {
    /// The id handed out while recording is disabled; every operation on
    /// it is a no-op.
    pub const DISABLED: TraceId = TraceId(u64::MAX);
}

/// Everything the recorder knows about one request, filled in stage by
/// stage as the request moves submit → admit → batch → shard → reorder →
/// deliver. All stamps quote the front-end's virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Lifecycle {
    /// Submitting tenant.
    pub tenant: u32,
    /// Per-tenant submission sequence number.
    pub seq: u64,
    /// Virtual-clock stamp at submission.
    pub submitted_at: u64,
    /// Absolute deadline the submitter asked for.
    pub deadline: u64,
    /// Rejection reason when admission refused the request.
    pub rejected: Option<&'static str>,
    /// Stamp at which the request was flushed into a batch.
    pub batched_at: Option<u64>,
    /// What triggered the flush that carried this request.
    pub trigger: Option<&'static str>,
    /// Pool shard the request executed on.
    pub shard: Option<usize>,
    /// Stamp at which the shard's result was available.
    pub completed_at: Option<u64>,
    /// Stamp at which the reply left the reorder stage.
    pub delivered_at: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    id: u64,
    life: Lifecycle,
}

/// Fixed-capacity ring of the most recent [`Lifecycle`]s. Owned by the
/// component doing the tracing (one per [`Front`]); not thread-shared —
/// the front already serializes its own submit/advance path.
///
/// [`Front`]: https://docs.rs/matador-serve
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Option<Slot>>,
    next_id: u64,
    dump_on_drop: bool,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` lifecycles
    /// (`capacity == 0` rounds up to 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            slots: vec![None; capacity.max(1)],
            next_id: 0,
            dump_on_drop: false,
        }
    }

    /// Number of lifecycles retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total requests ever traced (including evicted ones).
    pub fn traced(&self) -> u64 {
        self.next_id
    }

    /// When set, the recorder prints [`FlightRecorder::render`] to
    /// stderr as it is dropped — the crash-dump behaviour.
    pub fn set_dump_on_drop(&mut self, dump: bool) {
        self.dump_on_drop = dump;
    }

    /// Starts tracing a request, evicting the lifecycle `capacity` ids
    /// older. Returns [`TraceId::DISABLED`] (all later stages no-op)
    /// while recording is disabled.
    pub fn begin(&mut self, tenant: u32, seq: u64, submitted_at: u64, deadline: u64) -> TraceId {
        if !enabled() {
            return TraceId::DISABLED;
        }
        let id = self.next_id;
        self.next_id += 1;
        let slot = (id % self.slots.len() as u64) as usize;
        self.slots[slot] = Some(Slot {
            id,
            life: Lifecycle {
                tenant,
                seq,
                submitted_at,
                deadline,
                ..Lifecycle::default()
            },
        });
        TraceId(id)
    }

    /// Applies `f` to the traced lifecycle; a no-op when the id was
    /// [`TraceId::DISABLED`] or its slot has been reused by a newer
    /// request.
    pub fn update(&mut self, id: TraceId, f: impl FnOnce(&mut Lifecycle)) {
        if id == TraceId::DISABLED || self.slots.is_empty() {
            return;
        }
        let slot = (id.0 % self.slots.len() as u64) as usize;
        if let Some(s) = &mut self.slots[slot] {
            if s.id == id.0 {
                f(&mut s.life);
            }
        }
    }

    /// The retained lifecycles, oldest first.
    pub fn lifecycles(&self) -> Vec<Lifecycle> {
        let mut kept: Vec<&Slot> = self.slots.iter().flatten().collect();
        kept.sort_by_key(|s| s.id);
        kept.into_iter().map(|s| s.life).collect()
    }

    /// Human-readable dump: one line per retained request, oldest first,
    /// with every recorded stage stamp.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut kept: Vec<&Slot> = self.slots.iter().flatten().collect();
        kept.sort_by_key(|s| s.id);
        let mut out = format!(
            "flight recorder: {} of {} traced requests retained\n",
            kept.len(),
            self.next_id
        );
        for s in kept {
            let l = &s.life;
            let _ = write!(
                out,
                "#{} tenant={} seq={} submitted={} deadline={}",
                s.id, l.tenant, l.seq, l.submitted_at, l.deadline
            );
            if let Some(reason) = l.rejected {
                let _ = write!(out, " rejected={reason}");
            }
            if let Some(t) = l.batched_at {
                let _ = write!(out, " batched={t}");
            }
            if let Some(trigger) = l.trigger {
                let _ = write!(out, " trigger={trigger}");
            }
            if let Some(shard) = l.shard {
                let _ = write!(out, " shard={shard}");
            }
            if let Some(t) = l.completed_at {
                let _ = write!(out, " completed={t}");
            }
            if let Some(t) = l.delivered_at {
                let _ = write!(out, " delivered={t}");
            }
            out.push('\n');
        }
        out
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        if self.dump_on_drop && self.next_id > 0 {
            eprintln!("{}", self.render());
        }
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;
    use crate::metrics::set_enabled;

    #[test]
    fn traces_full_lifecycle() {
        let _g = crate::metrics::test_lock();
        set_enabled(true);
        let mut fr = FlightRecorder::new(8);
        let id = fr.begin(2, 0, 10, 500);
        fr.update(id, |l| {
            l.batched_at = Some(40);
            l.trigger = Some("lane_block_full");
        });
        fr.update(id, |l| {
            l.shard = Some(1);
            l.completed_at = Some(90);
        });
        fr.update(id, |l| l.delivered_at = Some(95));
        let lives = fr.lifecycles();
        assert_eq!(lives.len(), 1);
        let l = &lives[0];
        assert_eq!(
            (l.tenant, l.seq, l.submitted_at, l.deadline),
            (2, 0, 10, 500)
        );
        assert_eq!(l.batched_at, Some(40));
        assert_eq!(l.trigger, Some("lane_block_full"));
        assert_eq!(l.shard, Some(1));
        assert_eq!(l.completed_at, Some(90));
        assert_eq!(l.delivered_at, Some(95));
        let text = fr.render();
        assert!(text.contains("tenant=2"), "{text}");
        assert!(text.contains("trigger=lane_block_full"), "{text}");
    }

    #[test]
    fn ring_evicts_oldest_and_ignores_stale_updates() {
        let _g = crate::metrics::test_lock();
        set_enabled(true);
        let mut fr = FlightRecorder::new(4);
        let first = fr.begin(0, 0, 0, 100);
        let ids: Vec<TraceId> = (1..=4).map(|i| fr.begin(0, i, i, 100)).collect();
        // `first` was evicted by the 5th begin; updating it is a no-op.
        fr.update(first, |l| l.delivered_at = Some(1));
        let lives = fr.lifecycles();
        assert_eq!(lives.len(), 4);
        assert!(lives.iter().all(|l| l.delivered_at.is_none()));
        assert_eq!(lives[0].seq, 1, "oldest retained is seq 1");
        // The newest ids still resolve.
        fr.update(ids[3], |l| l.delivered_at = Some(9));
        assert_eq!(fr.lifecycles()[3].delivered_at, Some(9));
        assert_eq!(fr.traced(), 5);
    }

    #[test]
    fn disabled_recording_hands_out_inert_ids() {
        let _g = crate::metrics::test_lock();
        set_enabled(false);
        let mut fr = FlightRecorder::new(4);
        let id = fr.begin(0, 0, 0, 100);
        assert_eq!(id, TraceId::DISABLED);
        fr.update(id, |l| l.delivered_at = Some(1));
        assert!(fr.lifecycles().is_empty());
        set_enabled(true);
    }
}

#[cfg(all(test, feature = "noop"))]
mod noop_tests {
    use super::*;

    #[test]
    fn noop_build_hands_out_inert_ids() {
        let mut fr = FlightRecorder::new(4);
        assert_eq!(fr.begin(0, 0, 0, 1), TraceId::DISABLED);
        assert!(fr.lifecycles().is_empty());
    }
}
