//! Metrics core: sharded counters, gauges and log2 histograms behind a
//! [`Registry`], with Prometheus text exposition and structured
//! snapshots.
//!
//! ## Design rules
//!
//! Recording is **atomics-only**: after a handle has been resolved from
//! the registry (which takes a lock and may allocate, so do it at
//! construction/warm-up time), `inc`/`add`/`set`/`record` never lock,
//! never allocate and never branch on anything but the global enable
//! gate. That is what lets the serving stack keep its zero-allocation
//! warmed paths (`crates/sim/tests/no_alloc.rs`) and bit-identical
//! replay (`tests/*_determinism.rs`) with metrics on: a metric is a pure
//! sink, never an input to control flow.
//!
//! The enable gate is one relaxed atomic load. It defaults to **on**,
//! can be forced off for a process with `MATADOR_METRICS=0`, toggled at
//! runtime with [`set_enabled`], and compiled out entirely with the
//! `noop` cargo feature (every record path becomes a constant-false
//! branch the optimizer deletes).

use std::collections::BTreeMap;
use std::fmt::Write as _;
#[cfg(not(feature = "noop"))]
use std::sync::atomic::AtomicU8;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Independent cells a [`Counter`] stripes increments over to keep
/// unrelated threads off each other's cache lines.
pub const COUNTER_SHARDS: usize = 8;

/// Number of log2 buckets in a [`Histogram`]; bucket `i` holds values
/// whose bit length is `i` (so its inclusive upper bound is `2^i - 1`),
/// with the last bucket absorbing everything wider.
pub const HISTOGRAM_BUCKETS: usize = 64;

// --- Global enable gate ------------------------------------------------

// 0 = unresolved (consult MATADOR_METRICS), 1 = off, 2 = on.
#[cfg(not(feature = "noop"))]
static ENABLED_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether metric recording is currently enabled.
///
/// Defaults to on; the first call consults the `MATADOR_METRICS`
/// environment variable (`0`/`off`/`false` disable), after which the
/// check is a single relaxed atomic load. Compiled to a constant `false`
/// under the `noop` feature.
#[cfg(not(feature = "noop"))]
#[inline]
pub fn enabled() -> bool {
    match ENABLED_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => resolve_enabled(),
    }
}

#[cfg(not(feature = "noop"))]
#[cold]
fn resolve_enabled() -> bool {
    let on = !matches!(
        std::env::var("MATADOR_METRICS").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    );
    ENABLED_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Whether metric recording is currently enabled (always `false`: this
/// build compiled the recorder out with the `noop` feature).
#[cfg(feature = "noop")]
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// Turns metric recording on or off for the whole process, overriding
/// `MATADOR_METRICS`. A no-op under the `noop` feature.
pub fn set_enabled(on: bool) {
    #[cfg(not(feature = "noop"))]
    ENABLED_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    #[cfg(feature = "noop")]
    let _ = on;
}

// --- Per-thread counter cell hint --------------------------------------

static NEXT_CELL: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CELL_HINT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

#[inline]
fn cell_index() -> usize {
    CELL_HINT.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_CELL.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
            c.set(v);
            v
        }
    })
}

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

// --- Metric kinds ------------------------------------------------------

/// Monotonically increasing event count, striped over
/// [`COUNTER_SHARDS`] cache-line-padded cells so concurrent shard
/// workers don't serialize on one line.
#[derive(Default)]
pub struct Counter {
    cells: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// A free-standing counter (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. One relaxed `fetch_add` on the calling thread's cell;
    /// nothing when recording is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.cells[cell_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all cells.
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    /// Zeroes the counter (benchmark/test plumbing, not a hot path).
    pub fn reset(&self) {
        for c in &self.cells {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.value())
            .finish()
    }
}

/// Point-in-time signed value (queue depths, deficits, current plan).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A free-standing gauge (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge. One relaxed store; nothing when disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if !enabled() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative). One relaxed `fetch_add`; nothing
    /// when disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge")
            .field("value", &self.value())
            .finish()
    }
}

/// Fixed-shape log2 histogram: [`HISTOGRAM_BUCKETS`] buckets where
/// bucket `i` counts samples of bit length `i` (inclusive upper bound
/// `2^i - 1`), plus a running sum and count. The shape is fixed at
/// compile time so recording is three relaxed `fetch_add`s and the
/// registry never reallocates.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A free-standing histogram (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Three relaxed `fetch_add`s; nothing when
    /// disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        let b = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[b.min(HISTOGRAM_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Snapshot of the non-empty buckets as `(inclusive upper bound,
    /// cumulative count ≤ bound)` pairs in ascending-bound order; the
    /// final pair always carries `u64::MAX` (the `+Inf` bucket) and the
    /// total count.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cumulative += n;
                let le = if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
                buckets.push((le, cumulative));
            }
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum(),
            count: self.count(),
        }
    }

    /// Zeroes every bucket, the sum and the count.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

// --- Registry ----------------------------------------------------------

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    help: &'static str,
    metric: Metric,
}

/// Name + label-set keyed home of every metric. Registration (the only
/// locking, allocating operation) returns an [`Arc`] handle; callers
/// resolve handles once at construction and record through them
/// lock-free afterwards. Registering the same `(name, labels)` twice
/// returns the same underlying metric, so independent components can
/// share a series without coordination.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<(String, String), Entry>>,
}

impl Registry {
    /// An empty registry. Most callers want [`Registry::global`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry the serving stack records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Resolves (registering on first sight) the counter `name{labels}`.
    /// `labels` is a raw Prometheus label body (`tenant="3"`), empty for
    /// none.
    ///
    /// # Panics
    ///
    /// Panics if `(name, labels)` is already registered as a different
    /// metric kind.
    pub fn counter(&self, name: &str, labels: &str, help: &'static str) -> Arc<Counter> {
        match self.resolve(name, labels, help, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name}{{{labels}}} already registered with a different kind"),
        }
    }

    /// Resolves (registering on first sight) the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if `(name, labels)` is already registered as a different
    /// metric kind.
    pub fn gauge(&self, name: &str, labels: &str, help: &'static str) -> Arc<Gauge> {
        match self.resolve(name, labels, help, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name}{{{labels}}} already registered with a different kind"),
        }
    }

    /// Resolves (registering on first sight) the histogram
    /// `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if `(name, labels)` is already registered as a different
    /// metric kind.
    pub fn histogram(&self, name: &str, labels: &str, help: &'static str) -> Arc<Histogram> {
        match self.resolve(name, labels, help, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name}{{{labels}}} already registered with a different kind"),
        }
    }

    fn resolve(
        &self,
        name: &str,
        labels: &str,
        help: &'static str,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .entry((name.to_owned(), labels.to_owned()))
            .or_insert_with(|| Entry {
                help,
                metric: make(),
            })
            .metric
            .clone()
    }

    /// Zeroes every registered metric (benchmark/test plumbing; handles
    /// stay valid).
    pub fn reset(&self) {
        let inner = self.inner.lock().expect("registry poisoned");
        for entry in inner.values() {
            match &entry.metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format (`# HELP`/`# TYPE` once per family, histogram
    /// `_bucket{le=...}`/`_sum`/`_count` expansion).
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut out = String::new();
        let mut last_family = "";
        for ((name, labels), entry) in inner.iter() {
            if name != last_family {
                let kind = match entry.metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# HELP {name} {}", entry.help);
                let _ = writeln!(out, "# TYPE {name} {kind}");
            }
            last_family = name;
            match &entry.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", name, brace(labels), c.value());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", name, brace(labels), g.value());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    for &(le, cumulative) in &snap.buckets {
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            brace(&join_labels(labels, &le_label(le)))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {}",
                        brace(&join_labels(labels, "le=\"+Inf\"")),
                        snap.count
                    );
                    let _ = writeln!(out, "{name}_sum{} {}", brace(labels), snap.sum);
                    let _ = writeln!(out, "{name}_count{} {}", brace(labels), snap.count);
                }
            }
        }
        out
    }

    /// Structured point-in-time copy of every registered series, in
    /// `(name, labels)` order — the JSON writer's and delta math's view.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        let samples = inner
            .iter()
            .map(|((name, labels), entry)| Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: match &entry.metric {
                    Metric::Counter(c) => SampleValue::Counter(c.value()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.value()),
                    Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        Snapshot { samples }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.inner.lock().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("Registry").field("series", &n).finish()
    }
}

fn brace(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn join_labels(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        extra.to_owned()
    } else {
        format!("{labels},{extra}")
    }
}

fn le_label(le: u64) -> String {
    if le == u64::MAX {
        "le=\"+Inf\"".to_owned()
    } else {
        format!("le=\"{le}\"")
    }
}

// --- Snapshots ---------------------------------------------------------

/// One series captured by [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Metric family name.
    pub name: String,
    /// Raw Prometheus label body (`tenant="3"`), empty for none.
    pub labels: String,
    /// The captured value.
    pub value: SampleValue,
}

/// Captured value of one series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram buckets + sum + count.
    Histogram(HistogramSnapshot),
}

/// Point-in-time copy of a [`Histogram`]: non-empty `(le, cumulative
/// count)` pairs (ascending; `le == u64::MAX` is the `+Inf` bucket)
/// plus the running sum and count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// `(inclusive upper bound, cumulative count ≤ bound)` pairs.
    pub buckets: Vec<(u64, u64)>,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Number of recorded samples.
    pub count: u64,
}

/// Point-in-time copy of a whole [`Registry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Every series, in `(name, labels)` order.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// The counter `name{labels}`, 0 when absent.
    pub fn counter(&self, name: &str, labels: &str) -> u64 {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .and_then(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Sum of the counter family `name` over every label set.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// `self.counter(...) - earlier.counter(...)` (saturating): the
    /// per-window reading for a counter sampled before and after a run.
    pub fn counter_delta(&self, earlier: &Snapshot, name: &str, labels: &str) -> u64 {
        self.counter(name, labels)
            .saturating_sub(earlier.counter(name, labels))
    }
}

/// Serializes tests that toggle the process-wide enable gate.
#[cfg(all(test, not(feature = "noop")))]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn counter_stripes_and_sums() {
        let _g = test_lock();
        set_enabled(true);
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counter_concurrent_adds_are_lossless() {
        let _g = test_lock();
        set_enabled(true);
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panic");
        }
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn gauge_sets_and_adds() {
        let _g = test_lock();
        set_enabled(true);
        let g = Gauge::new();
        g.set(5);
        g.add(-8);
        assert_eq!(g.value(), -3);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let _g = test_lock();
        set_enabled(true);
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 255, 256, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(
            snap.sum,
            0u64.wrapping_add(1 + 2 + 3 + 4 + 255 + 256)
                .wrapping_add(u64::MAX)
        );
        // v=0 → le 0; v=1 → le 1; v∈{2,3} → le 3; v=4 → le 7;
        // v=255 → le 255; v=256 → le 511; u64::MAX → +Inf.
        let les: Vec<u64> = snap.buckets.iter().map(|b| b.0).collect();
        assert_eq!(les, vec![0, 1, 3, 7, 255, 511, u64::MAX]);
        // Cumulative counts are monotone and end at the total.
        assert!(snap.buckets.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(snap.buckets.last().expect("non-empty").1, snap.count);
    }

    #[test]
    fn disabled_recording_is_invisible() {
        let _g = test_lock();
        set_enabled(true);
        let c = Counter::new();
        let h = Histogram::new();
        set_enabled(false);
        c.inc();
        h.record(9);
        set_enabled(true);
        assert_eq!(c.value(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn registry_dedups_and_renders_prometheus() {
        let _g = test_lock();
        set_enabled(true);
        let r = Registry::new();
        let a = r.counter("t_total", "kind=\"x\"", "test counter");
        let b = r.counter("t_total", "kind=\"x\"", "test counter");
        a.add(3);
        b.add(4);
        let g = r.gauge("t_depth", "", "test gauge");
        g.set(-2);
        let h = r.histogram("t_lat", "", "test histogram");
        h.record(5);
        h.record(100);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE t_total counter"), "{text}");
        assert!(text.contains("t_total{kind=\"x\"} 7"), "{text}");
        assert!(text.contains("# TYPE t_depth gauge"), "{text}");
        assert!(text.contains("t_depth -2"), "{text}");
        assert!(text.contains("t_lat_bucket{le=\"7\"} 1"), "{text}");
        assert!(text.contains("t_lat_bucket{le=\"127\"} 2"), "{text}");
        assert!(text.contains("t_lat_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("t_lat_sum 105"), "{text}");
        assert!(text.contains("t_lat_count 2"), "{text}");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("t_mismatch", "", "as counter");
        r.gauge("t_mismatch", "", "as gauge");
    }

    #[test]
    fn snapshot_deltas() {
        let _g = test_lock();
        set_enabled(true);
        let r = Registry::new();
        let c = r.counter("t_evt_total", "op=\"a\"", "events");
        c.add(2);
        let before = r.snapshot();
        c.add(5);
        let after = r.snapshot();
        assert_eq!(after.counter("t_evt_total", "op=\"a\""), 7);
        assert_eq!(after.counter_delta(&before, "t_evt_total", "op=\"a\""), 5);
        assert_eq!(after.counter_total("t_evt_total"), 7);
        assert_eq!(after.counter("missing", ""), 0);
    }

    #[test]
    fn registry_reset_zeroes_everything() {
        let _g = test_lock();
        set_enabled(true);
        let r = Registry::new();
        let c = r.counter("t_reset_total", "", "events");
        let h = r.histogram("t_reset_lat", "", "latency");
        c.add(9);
        h.record(9);
        r.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(h.count(), 0);
        assert!(h.snapshot().buckets.is_empty());
    }
}

#[cfg(all(test, feature = "noop"))]
mod noop_tests {
    use super::*;

    #[test]
    fn noop_build_records_nothing() {
        assert!(!enabled());
        set_enabled(true); // must be inert
        assert!(!enabled());
        let c = Counter::new();
        c.inc();
        assert_eq!(c.value(), 0);
        let h = Histogram::new();
        h.record(7);
        assert_eq!(h.count(), 0);
    }
}
