//! # matador-rtl — netlist IR and Verilog generation
//!
//! The hardware back-end representation of the MATADOR flow:
//!
//! * [`netlist`] — a flat, validated, simulatable AND/NOT gate netlist,
//!   lowered from the logic optimizer's DAG (the clause logic of Fig 5),
//! * [`verilog`] — structural Verilog-2001 emission with optional
//!   `DONT_TOUCH` attributes (the Fig 8 experiment),
//! * [`gen`] — generators for every accelerator block: HCBs, polarity-split
//!   class sum, argmax comparison tree, stream controller, top level and
//!   the auto-debug testbench.
//!
//! The gate-level netlist is bit-true simulatable ([`netlist::Netlist::eval`]),
//! which the verification flow uses to prove the emitted clause logic
//! equivalent to software inference on every test vector.
//!
//! ```
//! use matador_logic::cube::{Cube, Lit};
//! use matador_logic::dag::{LogicDag, Sharing};
//! use matador_rtl::netlist::Netlist;
//! use tsetlin::bits::BitVec;
//!
//! let dag = LogicDag::from_cubes(
//!     4,
//!     &[Cube::from_lits([Lit::pos(0), Lit::neg(3)])],
//!     Sharing::Enabled,
//! );
//! let nl = Netlist::from_dag("window0", &dag);
//! assert_eq!(nl.eval(&BitVec::from_indices(4, &[0])), vec![true]);
//! ```

pub mod gen;
pub mod netlist;
pub mod verilog;

pub use gen::{DesignParams, GenError, TestVector};
pub use netlist::{Gate, NetId, Netlist, NetlistError};
pub use verilog::{emit_netlist, emit_netlist_body, EmitOptions};

/// Any error produced by the `matador-rtl` crate; the per-module typed
/// errors converge here (and onward into `matador::Error`) via `From`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Netlist structural validation failed.
    Netlist(NetlistError),
    /// An RTL generator was driven with mismatched shapes.
    Gen(GenError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Netlist(e) => e.fmt(f),
            Error::Gen(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Netlist(e) => Some(e),
            Error::Gen(e) => Some(e),
        }
    }
}

impl From<NetlistError> for Error {
    fn from(e: NetlistError) -> Self {
        Error::Netlist(e)
    }
}

impl From<GenError> for Error {
    fn from(e: GenError) -> Self {
        Error::Gen(e)
    }
}
