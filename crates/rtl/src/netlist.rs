//! Gate-level netlist for the combinational clause logic.
//!
//! The HCB partial-clause logic is pure AND/NOT structure (Fig 5's
//! "gate-level description of the partial clause"), so it is represented,
//! simulated and emitted at gate level. Sequential elements and arithmetic
//! (class sum, argmax) are generated as behavioral Verilog by [`crate::gen`]
//! and verified architecturally by the cycle-accurate simulator.

use matador_logic::dag::{LogicDag, Node};
use std::collections::HashMap;
use std::fmt;
use tsetlin::bits::BitVec;

/// Reference to a single-bit net.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct NetId(u32);

impl NetId {
    /// Index into the netlist's net table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A combinational cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Gate {
    /// `y = a & b`.
    And2 {
        /// First operand net.
        a: NetId,
        /// Second operand net.
        b: NetId,
        /// Output net.
        y: NetId,
    },
    /// `y = ~a`.
    Not {
        /// Operand net.
        a: NetId,
        /// Output net.
        y: NetId,
    },
    /// `y = value`.
    Const {
        /// Driven constant.
        value: bool,
        /// Output net.
        y: NetId,
    },
}

impl Gate {
    /// The net driven by this gate.
    pub fn output(&self) -> NetId {
        match *self {
            Gate::And2 { y, .. } | Gate::Not { y, .. } | Gate::Const { y, .. } => y,
        }
    }
}

/// Error returned when netlist validation fails, carrying the offending
/// gate/net so tooling can point at the structural violation directly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate reads a net that no input or earlier gate drives.
    UndrivenOperand {
        /// Index of the offending gate in topological order.
        gate: usize,
        /// Name of the undriven net.
        net: String,
    },
    /// Two drivers target the same net.
    MultipleDrivers {
        /// Name of the multiply-driven net.
        net: String,
    },
    /// An output port has no driver.
    UndrivenOutput {
        /// Name of the undriven output.
        net: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid netlist: ")?;
        match self {
            NetlistError::UndrivenOperand { gate, net } => {
                write!(f, "gate {gate} reads undriven net '{net}'")
            }
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net '{net}' has multiple drivers")
            }
            NetlistError::UndrivenOutput { net } => write!(f, "output '{net}' is undriven"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// A flat combinational netlist with named input and output ports.
///
/// Gates are stored in topological order (a gate's operands are either
/// inputs or outputs of earlier gates), which [`Netlist::validate`]
/// enforces and the evaluator exploits.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Netlist {
    name: String,
    net_names: Vec<String>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    gates: Vec<Gate>,
}

impl Netlist {
    /// Creates an empty netlist named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            net_names: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            gates: Vec::new(),
        }
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a new net; `name` is sanitized to a Verilog identifier.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(sanitize_identifier(&name.into()));
        id
    }

    /// Declares an input port net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.inputs.push(id);
        id
    }

    /// Marks an existing net as an output port.
    pub fn add_output(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// Adds `y = a & b`, returning the output net.
    pub fn and2(&mut self, a: NetId, b: NetId, name: impl Into<String>) -> NetId {
        let y = self.add_net(name);
        self.gates.push(Gate::And2 { a, b, y });
        y
    }

    /// Adds `y = ~a`, returning the output net.
    pub fn not(&mut self, a: NetId, name: impl Into<String>) -> NetId {
        let y = self.add_net(name);
        self.gates.push(Gate::Not { a, y });
        y
    }

    /// Adds a constant driver, returning the output net.
    pub fn constant(&mut self, value: bool, name: impl Into<String>) -> NetId {
        let y = self.add_net(name);
        self.gates.push(Gate::Const { value, y });
        y
    }

    /// Input ports in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Output ports in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// All gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Name of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to this netlist.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// Number of AND2 gates.
    pub fn and2_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::And2 { .. }))
            .count()
    }

    /// Number of NOT gates.
    pub fn not_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Not { .. }))
            .count()
    }

    /// Checks structural sanity: every gate operand is an input or driven
    /// by an earlier gate, each net has at most one driver, no dangling
    /// output ports.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] describing the first violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut driven = vec![false; self.net_names.len()];
        for &i in &self.inputs {
            driven[i.index()] = true;
        }
        for (gi, gate) in self.gates.iter().enumerate() {
            let operands: Vec<NetId> = match *gate {
                Gate::And2 { a, b, .. } => vec![a, b],
                Gate::Not { a, .. } => vec![a],
                Gate::Const { .. } => vec![],
            };
            for op in operands {
                if !driven[op.index()] {
                    return Err(NetlistError::UndrivenOperand {
                        gate: gi,
                        net: self.net_name(op).to_string(),
                    });
                }
            }
            let y = gate.output();
            if driven[y.index()] {
                return Err(NetlistError::MultipleDrivers {
                    net: self.net_name(y).to_string(),
                });
            }
            driven[y.index()] = true;
        }
        for &o in &self.outputs {
            if !driven[o.index()] {
                return Err(NetlistError::UndrivenOutput {
                    net: self.net_name(o).to_string(),
                });
            }
        }
        Ok(())
    }

    /// Evaluates the netlist on `inputs` (one bit per input port, in
    /// declaration order), returning output values in port order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of input ports.
    pub fn eval(&self, inputs: &BitVec) -> Vec<bool> {
        assert_eq!(inputs.len(), self.inputs.len(), "input port count mismatch");
        let mut values = vec![false; self.net_names.len()];
        for (k, &net) in self.inputs.iter().enumerate() {
            values[net.index()] = inputs.get(k);
        }
        for gate in &self.gates {
            match *gate {
                Gate::And2 { a, b, y } => {
                    values[y.index()] = values[a.index()] && values[b.index()]
                }
                Gate::Not { a, y } => values[y.index()] = !values[a.index()],
                Gate::Const { value, y } => values[y.index()] = value,
            }
        }
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// Lowers a [`LogicDag`] into a netlist. DAG inputs become ports
    /// `in_0..in_{w-1}`; DAG outputs become ports `out_0..`.
    ///
    /// Only reachable nodes are instantiated, so unshared (`DON'T TOUCH`)
    /// DAGs lower to proportionally larger netlists.
    pub fn from_dag(name: impl Into<String>, dag: &LogicDag) -> Netlist {
        let mut nl = Netlist::new(name);
        let input_nets: Vec<NetId> = (0..dag.width())
            .map(|i| nl.add_input(format!("in_{i}")))
            .collect();
        let reachable = dag.reachable();
        let mut node_net: HashMap<usize, NetId> = HashMap::new();
        let mut const0: Option<NetId> = None;
        let mut const1: Option<NetId> = None;
        for (i, node) in dag.nodes().iter().enumerate() {
            if !reachable[i] {
                continue;
            }
            let net = match *node {
                Node::Const0 => *const0.get_or_insert_with(|| nl_const(&mut nl, false)),
                Node::Const1 => *const1.get_or_insert_with(|| nl_const(&mut nl, true)),
                Node::Input(b) => input_nets[b as usize],
                Node::NotInput(b) => {
                    let a = input_nets[b as usize];
                    nl.not(a, format!("n_inv_{b}"))
                }
                Node::And(a, b) => {
                    let na = node_net[&a.index()];
                    let nb = node_net[&b.index()];
                    nl.and2(na, nb, format!("n_and_{i}"))
                }
            };
            node_net.insert(i, net);
        }
        let buffer_one = match const1 {
            Some(n) => n,
            None => nl_const(&mut nl, true),
        };
        for (k, out) in dag.outputs().iter().enumerate() {
            let net = node_net[&out.index()];
            // Outputs are dedicated ports, aliased through an AND-with-1
            // buffer so a net shared by several outputs (or an input pin)
            // keeps single-driver semantics trivially true.
            let port = nl.add_net(format!("out_{k}"));
            nl.gates.push(Gate::And2 {
                a: net,
                b: buffer_one,
                y: port,
            });
            nl.outputs.push(port);
        }
        nl
    }
}

fn nl_const(nl: &mut Netlist, value: bool) -> NetId {
    nl.constant(value, if value { "const1" } else { "const0" })
}

/// Rewrites `name` into a legal Verilog identifier (alphanumerics and
/// underscores, non-digit first character).
pub fn sanitize_identifier(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() || out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use matador_logic::cube::{Cube, Lit};
    use matador_logic::dag::Sharing;

    #[test]
    fn build_and_eval_small_netlist() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let nb = nl.not(b, "nb");
        let y = nl.and2(a, nb, "y");
        nl.add_output(y);
        nl.validate().expect("valid");
        assert_eq!(nl.eval(&BitVec::from_indices(2, &[0])), vec![true]);
        assert_eq!(nl.eval(&BitVec::from_indices(2, &[0, 1])), vec![false]);
        assert_eq!(nl.and2_count(), 1);
        assert_eq!(nl.not_count(), 1);
    }

    #[test]
    fn validate_rejects_undriven_operand() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let ghost = nl.add_net("ghost");
        let y = nl.and2(a, ghost, "y");
        nl.add_output(y);
        let err = nl.validate().unwrap_err();
        assert!(err.to_string().contains("undriven"));
        assert!(matches!(
            err,
            NetlistError::UndrivenOperand { gate: 0, ref net } if net == "ghost"
        ));
    }

    #[test]
    fn validate_rejects_double_driver() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.not(a, "y");
        nl.gates.push(Gate::Not { a, y });
        let err = nl.validate().unwrap_err();
        assert!(err.to_string().contains("multiple drivers"));
        assert!(matches!(err, NetlistError::MultipleDrivers { ref net } if net == "y"));
    }

    #[test]
    fn from_dag_matches_dag_semantics() {
        let cubes = vec![
            Cube::from_lits([Lit::pos(0), Lit::neg(1)]),
            Cube::from_lits([Lit::pos(2)]),
            Cube::one(),
            Cube::from_lits([Lit::pos(3), Lit::neg(3)]), // const 0
        ];
        for sharing in [Sharing::Enabled, Sharing::DontTouch] {
            let dag = LogicDag::from_cubes(4, &cubes, sharing);
            let nl = Netlist::from_dag("w0", &dag);
            nl.validate().expect("valid");
            for v in 0..16u32 {
                let input = BitVec::from_bools((0..4).map(|k| (v >> k) & 1 == 1));
                assert_eq!(nl.eval(&input), dag.eval(&input), "input {v:04b}");
            }
        }
    }

    #[test]
    fn from_dag_gate_counts_track_sharing() {
        let cubes = vec![Cube::from_lits([Lit::pos(0), Lit::pos(1)]); 6];
        let shared = Netlist::from_dag("s", &LogicDag::from_cubes(4, &cubes, Sharing::Enabled));
        let dt = Netlist::from_dag("d", &LogicDag::from_cubes(4, &cubes, Sharing::DontTouch));
        // +1 AND per output for the port buffer in both cases.
        assert!(shared.and2_count() < dt.and2_count());
    }

    #[test]
    fn sanitize_identifier_rules() {
        assert_eq!(sanitize_identifier("clause[3].out"), "clause_3__out");
        assert_eq!(sanitize_identifier("3bad"), "_3bad");
        assert_eq!(sanitize_identifier(""), "_");
        assert_eq!(sanitize_identifier("ok_name9"), "ok_name9");
    }
}
