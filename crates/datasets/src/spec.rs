//! Dataset identities and generation parameters.

use std::fmt;

/// Error returned when a [`SyntheticSpec`]'s parameters are inconsistent.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SpecError {
    /// `distinct_bits + mode_spread_bits` exceeds the feature width, so
    /// class/mode signatures cannot be placed.
    SignatureExceedsWidth {
        /// Class-signature flip count.
        distinct_bits: usize,
        /// Mode-signature flip count.
        mode_spread_bits: usize,
        /// Booleanized feature width of the dataset kind.
        features: usize,
    },
    /// A probability-valued field is outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Which field (`"base_density"` or `"noise"`).
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `central_band` is outside `(0, 1]` — the signature band would be
    /// empty or exceed the feature range.
    CentralBandOutOfRange {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid synthetic dataset spec: ")?;
        match *self {
            SpecError::SignatureExceedsWidth {
                distinct_bits,
                mode_spread_bits,
                features,
            } => write!(
                f,
                "signature bits {distinct_bits}+{mode_spread_bits} exceed {features} features"
            ),
            SpecError::ProbabilityOutOfRange { field, value } => {
                write!(f, "{field} = {value} is outside [0, 1]")
            }
            SpecError::CentralBandOutOfRange { value } => {
                write!(f, "central_band = {value} is outside (0, 1]")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// The five evaluation datasets of the paper (Table I / Table II) plus the
/// two small datasets the prior FPGA-TM literature used (\[22\], \[23\]).
///
/// All are *synthetic stand-ins* generated with the real datasets'
/// dimensions and class counts; see `DESIGN.md` §1 for the substitution
/// argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DatasetKind {
    /// 784-bit handwritten-digit stand-in, 10 classes (13 × 64-bit packets).
    Mnist,
    /// 784-bit Kuzushiji-character stand-in, 10 classes.
    Kmnist,
    /// 784-bit fashion-article stand-in, 10 classes.
    Fmnist,
    /// 1024-bit animal/vehicle stand-in, 2 classes (16 packets).
    Cifar2,
    /// 377-bit keyword-spotting stand-in, 6 classes (6 packets).
    Kws6,
    /// 12-bit noisy-XOR: label = x₀ ⊕ x₁ with distractor bits.
    NoisyXor,
    /// 16-bit thermometer-encoded 3-class flower stand-in.
    Iris,
}

impl DatasetKind {
    /// All five Table I datasets, in the paper's row order.
    pub const TABLE_I: [DatasetKind; 5] = [
        DatasetKind::Mnist,
        DatasetKind::Kws6,
        DatasetKind::Cifar2,
        DatasetKind::Fmnist,
        DatasetKind::Kmnist,
    ];

    /// Booleanized feature width consumed by the accelerator.
    pub fn features(self) -> usize {
        match self {
            DatasetKind::Mnist | DatasetKind::Kmnist | DatasetKind::Fmnist => 784,
            DatasetKind::Cifar2 => 1024,
            DatasetKind::Kws6 => 377,
            DatasetKind::NoisyXor => 12,
            DatasetKind::Iris => 16,
        }
    }

    /// Number of classes.
    pub fn classes(self) -> usize {
        match self {
            DatasetKind::Mnist | DatasetKind::Kmnist | DatasetKind::Fmnist => 10,
            DatasetKind::Cifar2 => 2,
            DatasetKind::Kws6 => 6,
            DatasetKind::NoisyXor => 2,
            DatasetKind::Iris => 3,
        }
    }

    /// MATADOR clause budget per class used in the paper (Table II).
    /// The small datasets get a modest default.
    pub fn paper_clauses_per_class(self) -> usize {
        match self {
            DatasetKind::Mnist => 200,
            DatasetKind::Kws6 => 300,
            DatasetKind::Cifar2 => 1000,
            DatasetKind::Fmnist | DatasetKind::Kmnist => 500,
            DatasetKind::NoisyXor => 20,
            DatasetKind::Iris => 40,
        }
    }

    /// Generation parameters tuned so the trained-TM accuracy ordering
    /// reproduces Table I (MNIST easiest; CIFAR-2/KWS harder).
    pub fn default_spec(self) -> SyntheticSpec {
        match self {
            DatasetKind::Mnist => SyntheticSpec {
                kind: self,
                modes_per_class: 5,
                base_density: 0.18,
                distinct_bits: 90,
                mode_spread_bits: 60,
                noise: 0.09,
                central_band: 0.55,
            },
            DatasetKind::Kmnist => SyntheticSpec {
                kind: self,
                modes_per_class: 6,
                base_density: 0.20,
                distinct_bits: 80,
                mode_spread_bits: 70,
                noise: 0.13,
                central_band: 0.60,
            },
            DatasetKind::Fmnist => SyntheticSpec {
                kind: self,
                modes_per_class: 6,
                base_density: 0.25,
                distinct_bits: 80,
                mode_spread_bits: 65,
                noise: 0.13,
                central_band: 0.60,
            },
            DatasetKind::Cifar2 => SyntheticSpec {
                kind: self,
                modes_per_class: 12,
                base_density: 0.35,
                distinct_bits: 90,
                mode_spread_bits: 90,
                noise: 0.17,
                central_band: 0.70,
            },
            DatasetKind::Kws6 => SyntheticSpec {
                kind: self,
                modes_per_class: 6,
                base_density: 0.30,
                distinct_bits: 48,
                mode_spread_bits: 40,
                noise: 0.14,
                central_band: 0.80,
            },
            DatasetKind::NoisyXor => SyntheticSpec {
                kind: self,
                modes_per_class: 1,
                base_density: 0.5,
                distinct_bits: 0,
                mode_spread_bits: 0,
                noise: 0.0,
                central_band: 1.0,
            },
            DatasetKind::Iris => SyntheticSpec {
                kind: self,
                modes_per_class: 1,
                base_density: 0.0,
                distinct_bits: 0,
                mode_spread_bits: 0,
                noise: 0.0,
                central_band: 1.0,
            },
        }
    }
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DatasetKind::Mnist => "MNIST",
            DatasetKind::Kmnist => "KMNIST",
            DatasetKind::Fmnist => "FMNIST",
            DatasetKind::Cifar2 => "CIFAR-2",
            DatasetKind::Kws6 => "KWS-6",
            DatasetKind::NoisyXor => "2D-Noisy-XOR",
            DatasetKind::Iris => "IRIS",
        };
        f.write_str(name)
    }
}

/// Generation parameters of a prototype-based synthetic dataset.
///
/// Samples are drawn as: pick one of `modes_per_class` class prototypes,
/// then flip each bit independently with probability `noise`. Prototypes
/// are derived from one shared background pattern (`base_density` ones) by
/// flipping `distinct_bits` class-specific positions, then `mode_spread_bits`
/// mode-specific positions — so classes overlap heavily in the background
/// bits (like real image datasets) and differ in a sparse signature, which
/// is exactly the structure TM includes latch onto.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SyntheticSpec {
    /// Which dataset this parameterizes.
    pub kind: DatasetKind,
    /// Prototype sub-modes per class (intra-class variation).
    pub modes_per_class: usize,
    /// Fraction of background bits set.
    pub base_density: f64,
    /// Bits flipped from the background per class.
    pub distinct_bits: usize,
    /// Additional bits flipped per mode within a class.
    pub mode_spread_bits: usize,
    /// Per-bit flip probability at sampling time.
    pub noise: f64,
    /// Fraction of the feature range (centred) that carries the class /
    /// mode signature bits. Discriminative pixels cluster centrally in
    /// the real image datasets, which is what gives Fig 8 its mid-chain
    /// per-HCB resource bump; 1.0 = uniform.
    pub central_band: f64,
}

impl SyntheticSpec {
    /// Checks the parameters are generatable for this spec's kind.
    ///
    /// The NoisyXor and Iris generators are closed-form and ignore the
    /// prototype fields entirely, so specs of those kinds always validate.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] naming the first inconsistent field.
    pub fn validate(&self) -> Result<(), SpecError> {
        if matches!(self.kind, DatasetKind::NoisyXor | DatasetKind::Iris) {
            return Ok(());
        }
        let features = self.kind.features();
        if self.distinct_bits + self.mode_spread_bits > features {
            return Err(SpecError::SignatureExceedsWidth {
                distinct_bits: self.distinct_bits,
                mode_spread_bits: self.mode_spread_bits,
                features,
            });
        }
        for (field, value) in [("base_density", self.base_density), ("noise", self.noise)] {
            if !(0.0..=1.0).contains(&value) {
                return Err(SpecError::ProbabilityOutOfRange { field, value });
            }
        }
        if !(self.central_band > 0.0 && self.central_band <= 1.0) {
            return Err(SpecError::CentralBandOutOfRange {
                value: self.central_band,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_match_paper() {
        assert_eq!(DatasetKind::Mnist.features(), 784);
        assert_eq!(DatasetKind::Cifar2.features(), 1024);
        assert_eq!(DatasetKind::Kws6.features(), 377);
        assert_eq!(DatasetKind::Mnist.classes(), 10);
        assert_eq!(DatasetKind::Cifar2.classes(), 2);
        assert_eq!(DatasetKind::Kws6.classes(), 6);
    }

    #[test]
    fn paper_clause_budgets_match_table_ii() {
        assert_eq!(DatasetKind::Mnist.paper_clauses_per_class(), 200);
        assert_eq!(DatasetKind::Kws6.paper_clauses_per_class(), 300);
        assert_eq!(DatasetKind::Cifar2.paper_clauses_per_class(), 1000);
        assert_eq!(DatasetKind::Fmnist.paper_clauses_per_class(), 500);
        assert_eq!(DatasetKind::Kmnist.paper_clauses_per_class(), 500);
    }

    #[test]
    fn table_i_order_matches_paper_rows() {
        let names: Vec<String> = DatasetKind::TABLE_I.iter().map(|k| k.to_string()).collect();
        assert_eq!(names, ["MNIST", "KWS-6", "CIFAR-2", "FMNIST", "KMNIST"]);
    }

    #[test]
    fn display_names() {
        assert_eq!(DatasetKind::NoisyXor.to_string(), "2D-Noisy-XOR");
    }
}
