//! # matador-datasets — synthetic edge-application workloads
//!
//! Deterministic stand-ins for the five datasets of the MATADOR evaluation
//! (MNIST, KMNIST, FMNIST, CIFAR-2, KWS-6) plus the 2-D Noisy XOR and IRIS
//! tasks used by the earlier TM-FPGA literature. Each generator matches the
//! real dataset's booleanized feature width and class count, so packet
//! counts, HCB structure and resource scaling downstream are faithful; see
//! `DESIGN.md` §1 for the substitution rationale.
//!
//! ```
//! use matador_datasets::{generate, DatasetKind, SplitSizes};
//!
//! let mnist = generate(DatasetKind::Mnist, SplitSizes::QUICK, 42);
//! assert_eq!(mnist.features(), 784);   // → 13 packets at W = 64
//! assert_eq!(mnist.classes(), 10);
//! ```

pub mod generate;
pub mod spec;

pub use generate::{generate, generate_with_spec, Dataset, SplitSizes};
pub use spec::{DatasetKind, SpecError, SyntheticSpec};
