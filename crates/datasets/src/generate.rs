//! Prototype-based synthetic dataset generation.

use crate::spec::{DatasetKind, SpecError, SyntheticSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tsetlin::bits::BitVec;
use tsetlin::booleanize::ThermometerEncoder;
use tsetlin::Sample;

/// A generated train/test split.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which dataset was generated.
    pub kind: DatasetKind,
    /// Training samples.
    pub train: Vec<Sample>,
    /// Held-out samples.
    pub test: Vec<Sample>,
}

impl Dataset {
    /// Booleanized feature width of every sample.
    pub fn features(&self) -> usize {
        self.kind.features()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.kind.classes()
    }
}

/// Sizing of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SplitSizes {
    /// Training samples (spread round-robin over classes).
    pub train: usize,
    /// Test samples.
    pub test: usize,
}

impl SplitSizes {
    /// Full-size evaluation split used by the table/figure harnesses.
    pub const FULL: SplitSizes = SplitSizes {
        train: 2000,
        test: 500,
    };

    /// Reduced split for CI and `--quick` runs.
    pub const QUICK: SplitSizes = SplitSizes {
        train: 400,
        test: 200,
    };
}

/// Generates `kind` with its default difficulty parameters.
///
/// Deterministic for a given `(kind, sizes, seed)` triple.
///
/// # Examples
///
/// ```
/// use matador_datasets::{generate, DatasetKind, SplitSizes};
///
/// let data = generate(DatasetKind::Kws6, SplitSizes::QUICK, 7);
/// assert_eq!(data.features(), 377);
/// assert_eq!(data.train.len(), 400);
/// assert_eq!(data.test.len(), 200);
/// ```
pub fn generate(kind: DatasetKind, sizes: SplitSizes, seed: u64) -> Dataset {
    generate_with_spec(&kind.default_spec(), sizes, seed)
        .expect("default specs are valid by construction")
}

/// Generates a dataset from explicit [`SyntheticSpec`] parameters.
///
/// # Errors
///
/// Returns [`SpecError`] (via [`SyntheticSpec::validate`]) if the spec's
/// parameters are inconsistent — e.g. signature bits exceeding the
/// feature width or probabilities outside `[0, 1]`.
pub fn generate_with_spec(
    spec: &SyntheticSpec,
    sizes: SplitSizes,
    seed: u64,
) -> Result<Dataset, SpecError> {
    spec.validate()?;
    Ok(match spec.kind {
        DatasetKind::NoisyXor => generate_noisy_xor(sizes, seed),
        DatasetKind::Iris => generate_iris(sizes, seed),
        _ => generate_prototype(spec, sizes, seed),
    })
}

fn generate_prototype(spec: &SyntheticSpec, sizes: SplitSizes, seed: u64) -> Dataset {
    let n = spec.kind.features();
    let classes = spec.kind.classes();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4d41_5441_444f_5231); // "MATADOR1"

    // Shared background pattern.
    let mut base = BitVec::zeros(n);
    for k in 0..n {
        if rng.gen::<f64>() < spec.base_density {
            base.set(k, true);
        }
    }

    // Per-class, per-mode prototypes. Signature flips are confined to a
    // centred band of the feature range (see `SyntheticSpec::central_band`).
    // validate() has already confined central_band to (0, 1].
    let band = spec.central_band;
    let band_lo = ((n as f64) * (1.0 - band) / 2.0) as usize;
    let band_hi = (band_lo + ((n as f64) * band) as usize)
        .min(n)
        .max(band_lo + 1);
    let mut prototypes: Vec<Vec<BitVec>> = Vec::with_capacity(classes);
    for _class in 0..classes {
        let mut class_sig = base.clone();
        flip_random_bits_in(
            &mut class_sig,
            spec.distinct_bits,
            band_lo..band_hi,
            &mut rng,
        );
        let modes = (0..spec.modes_per_class.max(1))
            .map(|_| {
                let mut proto = class_sig.clone();
                flip_random_bits_in(
                    &mut proto,
                    spec.mode_spread_bits,
                    band_lo..band_hi,
                    &mut rng,
                );
                proto
            })
            .collect();
        prototypes.push(modes);
    }

    let draw = |rng: &mut SmallRng, count: usize| -> Vec<Sample> {
        (0..count)
            .map(|i| {
                let class = i % classes;
                let proto = &prototypes[class][rng.gen_range(0..prototypes[class].len())];
                let mut x = proto.clone();
                for k in 0..n {
                    if rng.gen::<f64>() < spec.noise {
                        x.toggle(k);
                    }
                }
                Sample::new(x, class)
            })
            .collect()
    };

    let train = draw(&mut rng, sizes.train);
    let test = draw(&mut rng, sizes.test);
    Dataset {
        kind: spec.kind,
        train,
        test,
    }
}

fn flip_random_bits_in(
    bits: &mut BitVec,
    count: usize,
    range: std::ops::Range<usize>,
    rng: &mut SmallRng,
) {
    assert!(
        count <= range.len(),
        "cannot flip {count} distinct bits in a {}-bit band",
        range.len()
    );
    let mut flipped = 0usize;
    let mut chosen = vec![false; range.len()];
    while flipped < count {
        let k = rng.gen_range(range.clone());
        if !chosen[k - range.start] {
            chosen[k - range.start] = true;
            bits.toggle(k);
            flipped += 1;
        }
    }
}

/// The 2-D Noisy XOR benchmark of the early TM-FPGA literature: label is
/// `x₀ ⊕ x₁`, ten distractor bits are uniform noise, and 40 % of *training*
/// labels are flipped (the test split is clean).
fn generate_noisy_xor(sizes: SplitSizes, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0058_4f52);
    let n = DatasetKind::NoisyXor.features();
    let draw = |rng: &mut SmallRng, count: usize, label_noise: f64| -> Vec<Sample> {
        (0..count)
            .map(|_| {
                let mut x = BitVec::zeros(n);
                for k in 0..n {
                    if rng.gen::<bool>() {
                        x.set(k, true);
                    }
                }
                let mut label = usize::from(x.get(0) ^ x.get(1));
                if rng.gen::<f64>() < label_noise {
                    label = 1 - label;
                }
                Sample::new(x, label)
            })
            .collect()
    };
    let train = draw(&mut rng, sizes.train, 0.4);
    let test = draw(&mut rng, sizes.test, 0.0);
    Dataset {
        kind: DatasetKind::NoisyXor,
        train,
        test,
    }
}

/// IRIS stand-in: three Gaussian clusters over four continuous features,
/// thermometer-booleanized to 4 levels (16 bits) with encoder fitted on the
/// training split — exercising the full booleanization path of the flow.
fn generate_iris(sizes: SplitSizes, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4952_4953);
    // Cluster means loosely shaped like the real iris classes.
    let means = [
        [5.0f64, 3.4, 1.5, 0.25],
        [5.9, 2.8, 4.3, 1.3],
        [6.6, 3.0, 5.5, 2.0],
    ];
    let sd = [0.35f64, 0.30, 0.35, 0.25];
    let draw_raw = |rng: &mut SmallRng, count: usize| -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::with_capacity(count);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let class = i % 3;
            let row: Vec<f64> = (0..4)
                .map(|f| means[class][f] + gaussian(rng) * sd[f])
                .collect();
            rows.push(row);
            labels.push(class);
        }
        (rows, labels)
    };
    let (train_raw, train_labels) = draw_raw(&mut rng, sizes.train);
    let (test_raw, test_labels) = draw_raw(&mut rng, sizes.test);
    let encoder = ThermometerEncoder::fit(&train_raw, 4);
    let encode = |rows: &[Vec<f64>], labels: &[usize]| -> Vec<Sample> {
        rows.iter()
            .zip(labels)
            .map(|(row, &label)| {
                let bits = encoder.encode(row).expect("width fixed by construction");
                Sample::new(bits, label)
            })
            .collect()
    };
    Dataset {
        kind: DatasetKind::Iris,
        train: encode(&train_raw, &train_labels),
        test: encode(&test_raw, &test_labels),
    }
}

/// Box–Muller standard normal deviate.
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_specs_are_rejected_with_typed_errors() {
        let mut spec = DatasetKind::Kws6.default_spec();
        spec.distinct_bits = 300;
        spec.mode_spread_bits = 300;
        assert_eq!(
            generate_with_spec(&spec, SplitSizes::QUICK, 1).unwrap_err(),
            SpecError::SignatureExceedsWidth {
                distinct_bits: 300,
                mode_spread_bits: 300,
                features: 377,
            }
        );
        let mut spec = DatasetKind::Mnist.default_spec();
        spec.noise = 1.5;
        assert!(matches!(
            generate_with_spec(&spec, SplitSizes::QUICK, 1).unwrap_err(),
            SpecError::ProbabilityOutOfRange { field: "noise", .. }
        ));
        let mut spec = DatasetKind::Mnist.default_spec();
        spec.central_band = 0.0;
        assert!(matches!(
            generate_with_spec(&spec, SplitSizes::QUICK, 1).unwrap_err(),
            SpecError::CentralBandOutOfRange { .. }
        ));
        // Closed-form generators ignore the prototype fields, so their
        // kinds validate regardless of those values.
        let mut spec = DatasetKind::NoisyXor.default_spec();
        spec.distinct_bits = 9999;
        spec.central_band = 0.0;
        assert!(generate_with_spec(&spec, SplitSizes::QUICK, 1).is_ok());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(DatasetKind::Mnist, SplitSizes::QUICK, 11);
        let b = generate(DatasetKind::Mnist, SplitSizes::QUICK, 11);
        assert_eq!(a.train[0].input, b.train[0].input);
        assert_eq!(a.test[37].input, b.test[37].input);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(DatasetKind::Mnist, SplitSizes::QUICK, 11);
        let b = generate(DatasetKind::Mnist, SplitSizes::QUICK, 12);
        assert_ne!(a.train[0].input, b.train[0].input);
    }

    #[test]
    fn labels_cover_all_classes() {
        for kind in DatasetKind::TABLE_I {
            let d = generate(kind, SplitSizes::QUICK, 3);
            let mut seen = vec![false; kind.classes()];
            for s in &d.train {
                seen[s.label] = true;
            }
            assert!(seen.iter().all(|&s| s), "{kind}: missing class in train");
        }
    }

    #[test]
    fn widths_match_kind() {
        for kind in [
            DatasetKind::Mnist,
            DatasetKind::Cifar2,
            DatasetKind::Kws6,
            DatasetKind::NoisyXor,
            DatasetKind::Iris,
        ] {
            let d = generate(kind, SplitSizes::QUICK, 1);
            assert!(d.train.iter().all(|s| s.input.len() == kind.features()));
            assert!(d.test.iter().all(|s| s.input.len() == kind.features()));
        }
    }

    #[test]
    fn xor_test_labels_are_clean() {
        let d = generate(DatasetKind::NoisyXor, SplitSizes::QUICK, 5);
        for s in &d.test {
            assert_eq!(s.label, usize::from(s.input.get(0) ^ s.input.get(1)));
        }
    }

    #[test]
    fn iris_is_thermometer_monotone_per_feature() {
        let d = generate(DatasetKind::Iris, SplitSizes::QUICK, 5);
        for s in &d.train {
            for f in 0..4 {
                let mut seen_zero = false;
                for l in 0..4 {
                    let bit = s.input.get(f * 4 + l);
                    if !bit {
                        seen_zero = true;
                    } else {
                        assert!(!seen_zero, "non-monotone thermometer run");
                    }
                }
            }
        }
    }

    #[test]
    fn classes_are_separable_under_hamming_nearest_prototype() {
        // Sanity: a trivial nearest-class-centroid rule must beat chance by
        // a wide margin, otherwise the TM has nothing to learn.
        let d = generate(DatasetKind::Mnist, SplitSizes::QUICK, 9);
        let classes = d.classes();
        let n = d.features();
        let mut centroids = vec![vec![0i32; n]; classes];
        let mut counts = vec![0i32; classes];
        for s in &d.train {
            counts[s.label] += 1;
            for k in s.input.iter_ones() {
                centroids[s.label][k] += 1;
            }
        }
        let protos: Vec<BitVec> = centroids
            .iter()
            .zip(&counts)
            .map(|(c, &n_c)| BitVec::from_bools(c.iter().map(|&v| 2 * v > n_c)))
            .collect();
        let mut correct = 0usize;
        for s in &d.test {
            let best = (0..classes)
                .min_by_key(|&c| s.input.xor(&protos[c]).count_ones())
                .expect("non-empty");
            if best == s.label {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.test.len() as f64;
        assert!(acc > 0.6, "centroid accuracy {acc} too low");
    }
}
