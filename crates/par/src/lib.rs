//! # matador-par — deterministic scoped-thread parallelism
//!
//! The shared execution substrate behind every hot path of the MATADOR
//! reproduction: per-class Tsetlin Machine feedback, per-window logic
//! optimization in design generation, and the per-dataset rows of the
//! evaluation harnesses.
//!
//! Two properties are load-bearing and tested:
//!
//! 1. **Determinism across thread counts.** Every `par_map*` entry point
//!    collects results in *index* order, regardless of which worker ran
//!    which item, and callers derive all per-item randomness from
//!    [`split_seed`] rather than sharing one RNG stream. An algorithm
//!    built this way is bit-identical at `MATADOR_THREADS=1` and
//!    `MATADOR_THREADS=64` — `tests/parallel_equivalence.rs` in the
//!    workspace root locks this in for trained models, generated
//!    netlists and Table I rows.
//! 2. **No dependencies.** The crate sits below `tsetlin` in the
//!    dependency DAG and is implemented entirely over
//!    [`std::thread::scope`], so it is compatible with the vendored-stub
//!    build environment (no registry access, no `rayon`).
//!
//! ## Thread-count resolution
//!
//! The `MATADOR_THREADS` environment variable overrides the worker count
//! for every call that does not pass one explicitly: unset, `0` or
//! unparseable values resolve to [`available_threads`] (the machine's
//! available parallelism), and `1` forces the sequential in-caller path —
//! the recommended setting for debugging and bisecting, and one leg of
//! the CI matrix.
//!
//! ## Example
//!
//! ```
//! // Squares computed on worker threads, collected in index order.
//! let xs = vec![1u64, 2, 3, 4, 5];
//! let squares = matador_par::par_map_with(4, &xs, |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//!
//! // Per-index RNG streams: same derivation no matter who computes it.
//! let a = matador_par::split_seed(42, 0);
//! let b = matador_par::split_seed(42, 1);
//! assert_ne!(a, b);
//! assert_eq!(a, matador_par::split_seed(42, 0));
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod reactor;

/// A worker closure panicked inside a containment-aware entry point
/// ([`try_par_map_mut_with`]). Carries the *lowest* panicked item index
/// (deterministic regardless of which thread ran the item) and the
/// panic payload rendered to a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Lowest item index whose closure invocation panicked.
    pub index: usize,
    /// The panic payload (`&str`/`String` payloads verbatim, anything
    /// else as a placeholder).
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked at item {}: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Renders a caught panic payload the way the default hook would.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Name of the environment variable overriding the worker count.
pub const THREADS_ENV: &str = "MATADOR_THREADS";

/// The machine's available parallelism (falls back to `1` when the
/// platform cannot report it).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The effective worker count: the `MATADOR_THREADS` override when set to
/// a positive integer, otherwise [`available_threads`].
///
/// `MATADOR_THREADS=1` forces the sequential path (work runs on the
/// calling thread, no workers are spawned); `0` and unparseable values
/// fall back to the default. The variable is re-read on every call so
/// tests and long-lived drivers can change it at runtime.
pub fn configured_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) | Err(_) => available_threads(),
            Ok(n) => n,
        },
        Err(_) => available_threads(),
    }
}

/// Derives an independent RNG seed for stream `stream` of a root seed.
///
/// This is the seed-splitting scheme used throughout the workspace: a
/// SplitMix64-style finalizer over `root ^ (stream * φ64)`, giving
/// decorrelated streams even for consecutive `stream` indices. Callers
/// seed one generator per logical work item — e.g. per class and epoch in
/// TM training — so results never depend on which thread ran the item.
pub fn split_seed(root: u64, stream: u64) -> u64 {
    let mut z = root ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `f` over `items` on up to [`configured_threads`] workers,
/// returning results in item order.
///
/// Scheduling is dynamic (an atomic work index), so heterogeneous item
/// costs — logic windows of very different sizes, dataset rows with very
/// different training times — balance automatically. The output order is
/// index order regardless of scheduling.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // A 0/1-item map never spawns, so don't even resolve the thread
    // count (an env read) — small fan-outs stay allocation- and
    // syscall-free on the calling thread.
    if items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    par_map_with(configured_threads(), items, f)
}

/// [`par_map`] with an explicit worker count (`1` runs sequentially on
/// the calling thread).
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed_with(threads, items, |_, item| f(item))
}

/// Maps `f(index, item)` over `items` on up to [`configured_threads`]
/// workers, returning results in item order.
///
/// The index is the item's position in `items` — use it to derive
/// per-item RNG streams with [`split_seed`].
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    // Trivial fan-outs skip thread-count resolution (an env read) and
    // run inline — see [`par_map`].
    if items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    par_map_indexed_with(configured_threads(), items, f)
}

/// [`par_map_indexed`] with an explicit worker count (`1` runs
/// sequentially on the calling thread).
///
/// # Panics
///
/// Re-raises the first worker panic on the calling thread (matching the
/// sequential path, where the panic would surface directly).
pub fn par_map_indexed_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(bucket) => bucket,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Re-assemble in index order: exactly one worker produced each index.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for bucket in buckets {
        for (i, r) in bucket {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index is claimed by exactly one worker"))
        .collect()
}

/// Runs `f(index, &mut item)` over `items` in place, on up to
/// [`configured_threads`] workers.
///
/// Items are partitioned into contiguous chunks, one scoped worker per
/// chunk, so each item is mutated by exactly one thread. This is the
/// entry point for per-class TM feedback, where each class owns its
/// clause bank and derives its RNG stream from the index.
pub fn par_map_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    // Trivial fan-outs skip thread-count resolution (an env read) and
    // run inline — see [`par_map`].
    if items.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    par_map_mut_with(configured_threads(), items, f)
}

/// [`par_map_mut`] with an explicit worker count (`1` runs sequentially
/// on the calling thread).
///
/// # Panics
///
/// A worker panic propagates to the calling thread when the scope exits.
pub fn par_map_mut_with<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(threads.min(n));
    std::thread::scope(|s| {
        for (ci, chunk_items) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (j, item) in chunk_items.iter_mut().enumerate() {
                    f(ci * chunk + j, item);
                }
            });
        }
    });
}

/// [`par_map_mut_with`] with **panic containment**: each item's closure
/// invocation runs under [`std::panic::catch_unwind`], so one poisoned
/// item cannot abort its chunk-mates or tear down the calling thread.
///
/// Every item is still attempted — a panic at item `i` does not skip
/// `i+1` — and the workers and caller survive, so the data structure
/// being mapped over stays usable afterwards (the property the serving
/// pool's fault tolerance builds on). Returns the *lowest* panicked
/// index as a typed [`WorkerPanic`], which makes the error value
/// deterministic at any thread count; `Ok(())` when nothing panicked.
///
/// An item whose closure panicked may have been left partially mutated —
/// the caller decides whether that item's state is still meaningful
/// (the serving pool discards and re-dispatches such slices).
///
/// # Errors
///
/// Returns [`WorkerPanic`] naming the lowest panicked item.
pub fn try_par_map_mut_with<T, F>(threads: usize, items: &mut [T], f: F) -> Result<(), WorkerPanic>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let guarded = |i: usize, item: &mut T| -> Option<WorkerPanic> {
        catch_unwind(AssertUnwindSafe(|| f(i, item)))
            .err()
            .map(|payload| WorkerPanic {
                index: i,
                message: panic_message(payload.as_ref()),
            })
    };
    if threads <= 1 || n <= 1 {
        let mut first: Option<WorkerPanic> = None;
        for (i, item) in items.iter_mut().enumerate() {
            if let Some(p) = guarded(i, item) {
                first.get_or_insert(p);
            }
        }
        return match first {
            Some(p) => Err(p),
            None => Ok(()),
        };
    }
    let chunk = n.div_ceil(threads.min(n));
    let chunk_firsts: Vec<Option<WorkerPanic>> = std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, chunk_items)| {
                let guarded = &guarded;
                s.spawn(move || {
                    let mut first: Option<WorkerPanic> = None;
                    for (j, item) in chunk_items.iter_mut().enumerate() {
                        if let Some(p) = guarded(ci * chunk + j, item) {
                            first.get_or_insert(p);
                        }
                    }
                    first
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker closures are panic-contained"))
            .collect()
    });
    // Chunks are contiguous and in index order, so the first chunk with
    // a panic holds the globally lowest panicked index.
    match chunk_firsts.into_iter().flatten().next() {
        Some(p) => Err(p),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn par_map_preserves_index_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = par_map_with(threads, &items, |&x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_indexed_passes_true_indices() {
        let items = vec![(); 100];
        let out = par_map_indexed_with(7, &items, |i, ()| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_mut_touches_each_item_once() {
        for threads in [1, 2, 5, 16] {
            let mut items = vec![0u64; 101];
            par_map_mut_with(threads, &mut items, |i, slot| *slot += i as u64 + 1);
            for (i, &v) in items.iter().enumerate() {
                assert_eq!(v, i as u64 + 1, "threads={threads} index={i}");
            }
        }
    }

    #[test]
    fn parallel_equals_sequential_for_seeded_work() {
        // The property the rest of the workspace builds on: per-index
        // seeded work gives the same answer at any thread count.
        let items: Vec<u64> = (0..64).collect();
        let seq = par_map_indexed_with(1, &items, |i, &x| split_seed(x, i as u64));
        for threads in [2, 4, 32] {
            let par = par_map_indexed_with(threads, &items, |i, &x| split_seed(x, i as u64));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn split_seed_streams_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..1000u64 {
            assert!(seen.insert(split_seed(7, stream)), "collision at {stream}");
        }
        assert_eq!(split_seed(7, 3), split_seed(7, 3));
        assert_ne!(split_seed(7, 3), split_seed(8, 3));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map_with(8, &empty, |&x| x).is_empty());
        assert_eq!(par_map_with(8, &[9u8], |&x| x + 1), vec![10]);
        let mut one = [5u8];
        par_map_mut_with(8, &mut one, |_, x| *x = 6);
        assert_eq!(one, [6]);
    }

    #[test]
    fn trivial_fan_outs_run_on_the_calling_thread() {
        // 0/1-item maps and explicit threads=1 must never spawn: the
        // closure observes the caller's thread id.
        let caller = std::thread::current().id();
        let one = [7u8];
        let ids = par_map(&one, |_| std::thread::current().id());
        assert_eq!(ids, vec![caller]);
        let ids = par_map_indexed(&one, |_, _| std::thread::current().id());
        assert_eq!(ids, vec![caller]);
        let mut slot = [None];
        par_map_mut(&mut slot, |_, s| *s = Some(std::thread::current().id()));
        assert_eq!(slot, [Some(caller)]);
        let many = [0u8; 9];
        let ids = par_map_with(1, &many, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn worker_panic_propagates() {
        let items = vec![0usize; 16];
        let result = std::panic::catch_unwind(|| {
            par_map_indexed_with(4, &items, |i, _| {
                if i == 7 {
                    panic!("boom at 7");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    /// Serializes panic-hook swaps across the containment tests: the
    /// hook is process-global, so concurrent swap/restore would race.
    static HOOK_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn try_par_map_mut_contains_panics_and_reports_lowest_index() {
        let _guard = HOOK_LOCK.lock().unwrap();
        // Quiet the default panic hook for the intentional panics below.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // Deterministic at every thread count (1 and 8 are the CI matrix
        // legs): same typed error, same surviving mutations.
        for threads in [1, 2, 8] {
            let mut items: Vec<u64> = vec![0; 16];
            let err = try_par_map_mut_with(threads, &mut items, |i, slot| {
                if i == 11 || i == 5 {
                    panic!("boom at {i}");
                }
                *slot = i as u64 + 1;
            })
            .expect_err("two items panic");
            assert_eq!(
                err,
                WorkerPanic {
                    index: 5,
                    message: "boom at 5".to_string(),
                },
                "threads={threads}"
            );
            assert!(err.to_string().contains("item 5"), "{err}");
            // Containment: every non-panicking item was still mutated,
            // including the ones *after* the panics in the same chunk.
            for (i, &v) in items.iter().enumerate() {
                let expected = if i == 11 || i == 5 { 0 } else { i as u64 + 1 };
                assert_eq!(v, expected, "threads={threads} index={i}");
            }
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn try_par_map_mut_succeeds_and_stays_reusable_after_a_panic() {
        let _guard = HOOK_LOCK.lock().unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut items = vec![0u64; 9];
        try_par_map_mut_with(8, &mut items, |i, slot| {
            if i == 0 {
                panic!("poisoned");
            }
            *slot = 1;
        })
        .expect_err("item 0 panics");
        // The same buffer (and the plain entry points) work fine after
        // containment — nothing was torn down.
        try_par_map_mut_with(8, &mut items, |_, slot| *slot += 1).expect("clean run");
        assert_eq!(items[0], 1);
        assert!(items[1..].iter().all(|&v| v == 2));
        let doubled = par_map_with(8, &items, |&v| v * 2);
        assert_eq!(doubled[1..], vec![4; 8]);
        std::panic::set_hook(prev);
    }

    #[test]
    fn env_override_resolution() {
        // Serialize env mutation against other tests in this binary.
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap();
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(configured_threads(), 3);
        std::env::set_var(THREADS_ENV, "1");
        assert_eq!(configured_threads(), 1);
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(configured_threads(), available_threads());
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert_eq!(configured_threads(), available_threads());
        std::env::remove_var(THREADS_ENV);
        assert_eq!(configured_threads(), available_threads());
        assert!(available_threads() >= 1);
    }
}
