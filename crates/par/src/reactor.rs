//! Minimal reactor primitives for event-driven serving loops.
//!
//! The vendored-stub build environment has no async runtime, and the
//! workspace's determinism contract rules out wall-clock-driven control
//! flow anyway. This module provides the two pieces an open-submission
//! serving front-end actually needs, in the same dependency-free idiom as
//! the thread pool:
//!
//! - [`TimerWheel`]: a deterministic deadline queue over an abstract
//!   monotonic tick (virtual cycles in the serving runtime). Arming,
//!   expiry order and tie-breaking are pure functions of the armed
//!   `(tick, token)` pairs — never of insertion timing or threads — so a
//!   reactor built on it replays bit-identically from a recorded trace.
//! - [`Parker`]: a Mutex+Condvar thread-parking primitive for *real-time*
//!   drivers that sleep between submissions. It carries no notion of what
//!   time it is — callers park until a notification or a timeout and then
//!   consult their own clock — so the deterministic virtual-time path
//!   never touches it.
//!
//! ```
//! use matador_par::reactor::TimerWheel;
//!
//! let mut timers = TimerWheel::new();
//! timers.arm(30, 1);
//! timers.arm(10, 2);
//! timers.arm(10, 1);
//! assert_eq!(timers.next_deadline(), Some(10));
//! // Expiry is (tick, token)-ordered: deterministic under ties.
//! assert_eq!(timers.pop_expired(10), vec![(10, 1), (10, 2)]);
//! assert_eq!(timers.next_deadline(), Some(30));
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A deterministic deadline queue: `(tick, token)` pairs expire in
/// ascending `(tick, token)` order.
///
/// Tokens are caller-defined event identities (e.g. *idle flush* vs
/// *deadline check*). The wheel does not deduplicate: arming the same
/// token twice yields two expiries, which is what lazy cancellation
/// wants — a reactor re-arms freely and discards stale expiries by
/// checking them against its current state.
#[derive(Debug, Default, Clone)]
pub struct TimerWheel {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
}

impl TimerWheel {
    /// An empty wheel.
    pub fn new() -> Self {
        TimerWheel::default()
    }

    /// Arms `token` to expire at `tick`.
    pub fn arm(&mut self, tick: u64, token: u64) {
        self.heap.push(Reverse((tick, token)));
    }

    /// The earliest armed tick, if any timer is pending.
    pub fn next_deadline(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((tick, _))| *tick)
    }

    /// Pops every timer with `tick <= now`, in ascending `(tick, token)`
    /// order.
    pub fn pop_expired(&mut self, now: u64) -> Vec<(u64, u64)> {
        let mut expired = Vec::new();
        while let Some(Reverse((tick, token))) = self.heap.peek().copied() {
            if tick > now {
                break;
            }
            self.heap.pop();
            expired.push((tick, token));
        }
        expired
    }

    /// Number of armed timers (stale re-arms included).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Shared notification state behind a [`Parker`]/[`Unparker`] pair.
#[derive(Debug, Default)]
struct ParkState {
    notified: Mutex<bool>,
    condvar: Condvar,
}

/// The waiting half of a park/unpark pair: blocks the serving thread
/// between submissions without spinning.
///
/// Notifications are sticky — an [`Unparker::unpark`] that lands while
/// the parker is running makes the *next* park return immediately, so a
/// submission can never slip between "queue checked empty" and "thread
/// parked".
#[derive(Debug, Default)]
pub struct Parker {
    state: Arc<ParkState>,
}

/// The waking half of a [`Parker`]; cheap to clone into submitting
/// threads.
#[derive(Debug, Clone)]
pub struct Unparker {
    state: Arc<ParkState>,
}

impl Parker {
    /// A fresh parker with no pending notification.
    pub fn new() -> Self {
        Parker::default()
    }

    /// A waker handle for this parker.
    pub fn unparker(&self) -> Unparker {
        Unparker {
            state: Arc::clone(&self.state),
        }
    }

    /// Blocks until an unpark arrives or `timeout` elapses. Returns
    /// `true` when woken by an unpark (consumed), `false` on timeout.
    pub fn park_timeout(&self, timeout: Duration) -> bool {
        let mut notified = self
            .state
            .notified
            .lock()
            .expect("parker mutex never poisons: no panics while held");
        if !*notified {
            let (guard, _) = self
                .state
                .condvar
                .wait_timeout(notified, timeout)
                .expect("parker mutex never poisons: no panics while held");
            notified = guard;
        }
        std::mem::take(&mut *notified)
    }
}

impl Unparker {
    /// Wakes the parked thread (or makes its next park return
    /// immediately).
    pub fn unpark(&self) {
        let mut notified = self
            .state
            .notified
            .lock()
            .expect("parker mutex never poisons: no panics while held");
        *notified = true;
        self.state.condvar.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_expire_in_tick_then_token_order() {
        let mut wheel = TimerWheel::new();
        wheel.arm(5, 9);
        wheel.arm(3, 2);
        wheel.arm(5, 1);
        wheel.arm(8, 0);
        assert_eq!(wheel.next_deadline(), Some(3));
        assert_eq!(wheel.pop_expired(5), vec![(3, 2), (5, 1), (5, 9)]);
        assert_eq!(wheel.next_deadline(), Some(8));
        assert_eq!(wheel.pop_expired(7), vec![]);
        assert_eq!(wheel.pop_expired(100), vec![(8, 0)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn duplicate_arms_both_expire() {
        let mut wheel = TimerWheel::new();
        wheel.arm(4, 7);
        wheel.arm(2, 7);
        assert_eq!(wheel.len(), 2);
        assert_eq!(wheel.pop_expired(4), vec![(2, 7), (4, 7)]);
    }

    #[test]
    fn unpark_before_park_is_sticky() {
        let parker = Parker::new();
        parker.unparker().unpark();
        assert!(parker.park_timeout(Duration::from_secs(0)));
        // The notification was consumed: the next park times out.
        assert!(!parker.park_timeout(Duration::from_millis(1)));
    }

    #[test]
    fn unpark_wakes_a_parked_thread() {
        let parker = Parker::new();
        let unparker = parker.unparker();
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                unparker.unpark();
            });
            assert!(parker.park_timeout(Duration::from_secs(5)));
        });
    }
}
