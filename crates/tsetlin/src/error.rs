//! The crate-level error type: every fallible `tsetlin` API routes its
//! typed error here via `From`, and the MATADOR core crate in turn folds
//! [`Error`] into `matador::Error`.

use crate::booleanize::EncodeWidthError;
use crate::io::ParseModelError;
use crate::params::InvalidParamsError;
use std::fmt;

/// Any error produced by the `tsetlin` crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Hyperparameter validation failed.
    Params(InvalidParamsError),
    /// A model text file could not be parsed.
    ParseModel(ParseModelError),
    /// An encoder was applied to data of the wrong width.
    Encode(EncodeWidthError),
    /// An underlying I/O operation failed (model writing).
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Params(e) => e.fmt(f),
            Error::ParseModel(e) => e.fmt(f),
            Error::Encode(e) => e.fmt(f),
            Error::Io(e) => write!(f, "tsetlin io error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Params(e) => Some(e),
            Error::ParseModel(e) => Some(e),
            Error::Encode(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

impl From<InvalidParamsError> for Error {
    fn from(e: InvalidParamsError) -> Self {
        Error::Params(e)
    }
}

impl From<ParseModelError> for Error {
    fn from(e: ParseModelError) -> Self {
        Error::ParseModel(e)
    }
}

impl From<EncodeWidthError> for Error {
    fn from(e: EncodeWidthError) -> Self {
        Error::Encode(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TmParams;

    #[test]
    fn params_error_converts_and_chains() {
        let err: Error = TmParams::builder(0, 2).build().unwrap_err().into();
        assert!(matches!(
            err,
            Error::Params(InvalidParamsError::ZeroFeatures)
        ));
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("features"));
    }

    #[test]
    fn parse_error_converts() {
        let err: Error = crate::io::read_model("bogus\n".as_bytes())
            .unwrap_err()
            .into();
        assert!(matches!(err, Error::ParseModel(_)));
    }
}
