//! Packed bit-vector used throughout the workspace for boolean feature
//! vectors, literal include masks and partial-clause registers.
//!
//! The accelerator operates on 64-bit AXI packets, so a `u64`-word layout is
//! the natural shared representation between the training substrate, the
//! logic optimizer and the cycle-accurate simulator.

use std::fmt;

/// A fixed-length, heap-allocated bit vector packed into `u64` words.
///
/// Bits beyond `len` inside the last word are guaranteed to be zero; every
/// mutating operation restores this invariant, which lets word-level
/// comparisons (`covered_by`, `count_ones`) run without masking.
///
/// # Examples
///
/// ```
/// use tsetlin::bits::BitVec;
///
/// let mut v = BitVec::zeros(130);
/// v.set(0, true);
/// v.set(129, true);
/// assert_eq!(v.count_ones(), 2);
/// assert!(v.get(129));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one bit vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Builds a bit vector from an iterator of booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bools: Vec<bool> = bits.into_iter().collect();
        let mut v = BitVec::zeros(bools.len());
        for (i, b) in bools.iter().enumerate() {
            if *b {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a bit vector of `len` bits whose set positions are `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut v = BitVec::zeros(len);
        for &i in indices {
            v.set(i, true);
        }
        v
    }

    /// Builds a bit vector of `len` bits from the low bits of `word`
    /// (bit `i` of the vector reads bit `i` of the word). Word bits at or
    /// beyond `len` are discarded; for `len > 64` the upper bits are zero.
    /// The word-level inverse of [`BitVec::extract_word`].
    pub fn from_word(len: usize, word: u64) -> Self {
        let mut v = BitVec::zeros(len);
        v.assign_word(word);
        v
    }

    /// Overwrites the whole vector with the low bits of `word` (see
    /// [`BitVec::from_word`]) without touching its length or reallocating.
    pub fn assign_word(&mut self, word: u64) {
        let Some(first) = self.words.first_mut() else {
            return;
        };
        *first = word;
        for w in &mut self.words[1..] {
            *w = 0;
        }
        self.mask_tail();
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Backing words, little-endian bit order (bit `i` lives in word `i/64`,
    /// position `i%64`).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        let w = &mut self.words[i / 64];
        if value {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    /// Flips bit `i` and returns its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn toggle(&mut self, i: usize) -> bool {
        let new = !self.get(i);
        self.set(i, new);
        new
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` when every set bit of `self` is also set in `other`
    /// (i.e. `self & other == self`).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn covered_by(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & b == *a)
    }

    /// Word-wise AND in place (`self &= other`), allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Overwrites `self` with `other`'s bits without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn copy_from(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Word-wise AND into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "length mismatch");
        BitVec {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Word-wise OR into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn or(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "length mismatch");
        BitVec {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Word-wise XOR into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "length mismatch");
        BitVec {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a ^ b)
                .collect(),
            len: self.len,
        }
    }

    /// Bitwise complement (respecting `len`).
    pub fn not(&self) -> BitVec {
        let mut v = BitVec {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        v.mask_tail();
        v
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            bv: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterator over all bits as booleans, ascending index.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Copies bits `[start, start+width)` into the low bits of a `u64`.
    /// Bits past `len` read as zero.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn extract_word(&self, start: usize, width: usize) -> u64 {
        assert!(width <= 64, "cannot extract more than 64 bits");
        if width == 0 || start >= self.len {
            return 0;
        }
        // Word-level read: at most two backing words contribute. Bits past
        // `len` inside the last word are zero by invariant, so no extra
        // end-of-vector masking is needed.
        let wi = start / 64;
        let off = start % 64;
        let mut out = self.words[wi] >> off;
        if off != 0 && wi + 1 < self.words.len() {
            out |= self.words[wi + 1] << (64 - off);
        }
        if width < 64 {
            out &= (1u64 << width) - 1;
        }
        out
    }

    /// Extracts the sub-vector `[start, start+width)`; bits past `len` are
    /// zero-filled (matching the packetizer's zero padding).
    pub fn slice(&self, start: usize, width: usize) -> BitVec {
        let mut out = BitVec::zeros(width);
        for off in 0..width {
            let i = start + off;
            if i < self.len && self.get(i) {
                out.set(off, true);
            }
        }
        out
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        let shown = self.len.min(96);
        for i in 0..shown {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if shown < self.len {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bools(iter)
    }
}

/// Iterator over set-bit indices of a [`BitVec`], produced by
/// [`BitVec::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    bv: &'a BitVec,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + tz);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bv.words.len() {
                return None;
            }
            self.current = self.bv.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_empty_of_ones() {
        let v = BitVec::zeros(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.count_ones(), 0);
        assert!(!v.get(99));
    }

    #[test]
    fn ones_has_exactly_len_ones() {
        let v = BitVec::ones(67);
        assert_eq!(v.count_ones(), 67);
        // tail invariant: word bits past len are zero
        assert_eq!(v.words()[1] >> 3, 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(200);
        for i in (0..200).step_by(7) {
            v.set(i, true);
        }
        for i in 0..200 {
            assert_eq!(v.get(i), i % 7 == 0, "bit {i}");
        }
    }

    #[test]
    fn toggle_flips() {
        let mut v = BitVec::zeros(10);
        assert!(v.toggle(3));
        assert!(!v.toggle(3));
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn covered_by_subset_semantics() {
        let a = BitVec::from_indices(128, &[1, 64, 127]);
        let b = BitVec::from_indices(128, &[1, 5, 64, 100, 127]);
        assert!(a.covered_by(&b));
        assert!(!b.covered_by(&a));
        assert!(a.covered_by(&a));
    }

    #[test]
    fn not_respects_length() {
        let v = BitVec::from_indices(70, &[0, 69]);
        let n = v.not();
        assert_eq!(n.count_ones(), 68);
        assert!(!n.get(0));
        assert!(!n.get(69));
        assert!(n.get(1));
    }

    #[test]
    fn bitwise_ops() {
        let a = BitVec::from_indices(80, &[0, 10, 70]);
        let b = BitVec::from_indices(80, &[10, 70, 79]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![10, 70]);
        assert_eq!(
            a.or(&b).iter_ones().collect::<Vec<_>>(),
            vec![0, 10, 70, 79]
        );
        assert_eq!(a.xor(&b).iter_ones().collect::<Vec<_>>(), vec![0, 79]);
    }

    #[test]
    fn iter_ones_matches_get() {
        let v = BitVec::from_indices(300, &[0, 63, 64, 65, 128, 299]);
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, vec![0, 63, 64, 65, 128, 299]);
    }

    #[test]
    fn extract_word_lsb_first_and_zero_padded() {
        // Matches Fig 4: packets are filled LSB-first and the final packet is
        // zero-padded past the most significant feature bit.
        let mut v = BitVec::zeros(70);
        v.set(0, true);
        v.set(65, true);
        assert_eq!(v.extract_word(0, 64), 1);
        assert_eq!(v.extract_word(64, 64), 0b10);
    }

    #[test]
    fn extract_word_matches_per_bit_reference() {
        let v = BitVec::from_indices(200, &[0, 3, 63, 64, 65, 127, 128, 199]);
        for start in [0, 1, 5, 60, 63, 64, 100, 137, 190, 199, 200, 300] {
            for width in [0usize, 1, 3, 7, 17, 32, 63, 64] {
                let mut expect = 0u64;
                for off in 0..width {
                    let i = start + off;
                    if i < v.len() && v.get(i) {
                        expect |= 1 << off;
                    }
                }
                assert_eq!(
                    v.extract_word(start, width),
                    expect,
                    "start {start} width {width}"
                );
            }
        }
    }

    #[test]
    fn from_word_round_trips_extract_word() {
        for len in [1usize, 7, 13, 64, 70] {
            let word = 0xDEAD_BEEF_F00D_1234u64;
            let v = BitVec::from_word(len, word);
            assert_eq!(v.len(), len);
            let expect = if len >= 64 {
                word
            } else {
                word & ((1 << len) - 1)
            };
            assert_eq!(v.extract_word(0, 64.min(len)), expect, "len {len}");
            // Bits past 64 are zero.
            if len > 64 {
                assert!(!v.get(64));
            }
        }
        // Zero-length vectors stay well-formed.
        let mut empty = BitVec::zeros(0);
        empty.assign_word(!0);
        assert_eq!(empty.count_ones(), 0);
    }

    #[test]
    fn assign_word_clears_upper_words() {
        let mut v = BitVec::from_indices(130, &[0, 70, 129]);
        v.assign_word(0b101);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn and_assign_and_copy_from_match_allocating_ops() {
        let a = BitVec::from_indices(80, &[0, 10, 70]);
        let b = BitVec::from_indices(80, &[10, 70, 79]);
        let mut c = a.clone();
        c.and_assign(&b);
        assert_eq!(c, a.and(&b));
        let mut d = BitVec::zeros(80);
        d.copy_from(&b);
        assert_eq!(d, b);
    }

    #[test]
    fn slice_zero_fills_past_end() {
        let v = BitVec::ones(10);
        let s = v.slice(8, 8);
        assert_eq!(s.len(), 8);
        assert_eq!(s.count_ones(), 2);
    }

    #[test]
    fn from_bools_and_collect() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.len(), 3);
        assert!(v.get(0) && !v.get(1) && v.get(2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        BitVec::zeros(5).get(5);
    }

    #[test]
    fn display_is_bit_string() {
        let v = BitVec::from_indices(4, &[1, 3]);
        assert_eq!(v.to_string(), "0101");
    }
}
