//! Sparsity and logic-overlap analytics of trained models.
//!
//! Section II of the paper reports that trained TM models exhibit
//! "extremely high sparsity in the occurrence of includes, and significant
//! sharing of boolean expressions among the clauses within the class as
//! well as among the classes" — the observation that makes the compact
//! MATADOR designs possible (Fig 3). This module quantifies both effects
//! for a given model and bandwidth partitioning.

use crate::model::TrainedModel;
use std::collections::HashMap;

/// Whole-model sparsity summary.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SparsityReport {
    /// Total literal slots (`clauses × 2 × features`).
    pub literal_slots: usize,
    /// Total include decisions.
    pub includes: usize,
    /// `includes / literal_slots`.
    pub density: f64,
    /// Clauses with no includes at all (constant-1 clauses).
    pub empty_clauses: usize,
    /// Minimum / mean / maximum includes over non-empty clauses.
    pub includes_min: usize,
    /// Mean includes over non-empty clauses.
    pub includes_mean: f64,
    /// Maximum includes over any clause.
    pub includes_max: usize,
}

/// Per-window (per-HCB) expression-sharing statistics.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WindowSharing {
    /// Window index (HCB position in the chain).
    pub window: usize,
    /// Feature range start.
    pub start: usize,
    /// Feature range width.
    pub width: usize,
    /// Partial clauses whose window restriction is non-trivial (≥1 include).
    pub nontrivial: usize,
    /// Distinct non-trivial partial-clause expressions.
    pub distinct: usize,
    /// Non-trivial partial clauses shared with at least one other clause.
    pub shared: usize,
    /// Distinct expressions that occur in more than one *class*.
    pub cross_class: usize,
}

impl WindowSharing {
    /// Sharing ratio: fraction of non-trivial partial clauses that reuse an
    /// expression already instantiated by another clause.
    pub fn sharing_ratio(&self) -> f64 {
        if self.nontrivial == 0 {
            0.0
        } else {
            1.0 - self.distinct as f64 / self.nontrivial as f64
        }
    }
}

/// Computes the whole-model [`SparsityReport`].
pub fn sparsity_report(model: &TrainedModel) -> SparsityReport {
    let mut includes = 0usize;
    let mut empty = 0usize;
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut nonempty = 0usize;
    let mut nonempty_sum = 0usize;
    for (_, _, mask) in model.iter_clauses() {
        let k = mask.num_includes();
        includes += k;
        max = max.max(k);
        if k == 0 {
            empty += 1;
        } else {
            nonempty += 1;
            nonempty_sum += k;
            min = min.min(k);
        }
    }
    let literal_slots = model.total_clauses() * 2 * model.num_features();
    SparsityReport {
        literal_slots,
        includes,
        density: if literal_slots == 0 {
            0.0
        } else {
            includes as f64 / literal_slots as f64
        },
        empty_clauses: empty,
        includes_min: if nonempty == 0 { 0 } else { min },
        includes_mean: if nonempty == 0 {
            0.0
        } else {
            nonempty_sum as f64 / nonempty as f64
        },
        includes_max: max,
    }
}

/// A window expression identity: (pos-window-words, neg-window-words).
type WindowKey = (Vec<u64>, Vec<u64>);

/// Usage of one window expression: occurrence count + classes seen in.
type WindowUses = (usize, Vec<usize>);

/// Computes expression-sharing statistics per bandwidth window.
///
/// `window_bits` is the channel bandwidth `W`; windows tile the feature
/// space exactly like the HCB partitioning (`ceil(features / W)` windows,
/// last one zero-padded).
///
/// # Panics
///
/// Panics if `window_bits == 0`.
pub fn window_sharing(model: &TrainedModel, window_bits: usize) -> Vec<WindowSharing> {
    assert!(window_bits > 0, "window width must be positive");
    let n = model.num_features();
    let windows = n.div_ceil(window_bits);
    let mut out = Vec::with_capacity(windows);
    for w in 0..windows {
        let start = w * window_bits;
        // Key: (pos-window-words, neg-window-words); value: count + classes seen.
        let mut table: HashMap<WindowKey, WindowUses> = HashMap::new();
        let mut nontrivial = 0usize;
        for (class, _, mask) in model.iter_clauses() {
            let win = mask.window(start, window_bits);
            if win.num_includes() == 0 {
                continue;
            }
            nontrivial += 1;
            let key = (win.pos.words().to_vec(), win.neg.words().to_vec());
            let entry = table.entry(key).or_insert((0, Vec::new()));
            entry.0 += 1;
            if !entry.1.contains(&class) {
                entry.1.push(class);
            }
        }
        let distinct = table.len();
        let shared = table
            .values()
            .filter(|(count, _)| *count > 1)
            .map(|(count, _)| *count)
            .sum::<usize>();
        let cross_class = table.values().filter(|(_, cls)| cls.len() > 1).count();
        out.push(WindowSharing {
            window: w,
            start,
            width: window_bits.min(n - start),
            nontrivial,
            distinct,
            shared,
            cross_class,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitVec;
    use crate::model::{IncludeMask, TrainedModel};

    fn model_with_sharing() -> TrainedModel {
        let f = 8;
        let mk = |pos: &[usize], neg: &[usize]| IncludeMask {
            pos: BitVec::from_indices(f, pos),
            neg: BitVec::from_indices(f, neg),
        };
        // Window width 4 → windows [0..4) and [4..8).
        // class0/clause0 and class1/clause0 share the same window-0 cube.
        TrainedModel::from_masks(
            f,
            2,
            2,
            vec![
                mk(&[0, 1], &[]),  // cube A in window 0
                mk(&[], &[]),      // empty clause
                mk(&[0, 1], &[6]), // cube A in window 0 + cube in window 1
                mk(&[5], &[]),     // window 1 only
            ],
        )
    }

    #[test]
    fn sparsity_counts() {
        let m = model_with_sharing();
        let r = sparsity_report(&m);
        assert_eq!(r.includes, 6);
        assert_eq!(r.empty_clauses, 1);
        assert_eq!(r.literal_slots, 4 * 16);
        assert_eq!(r.includes_min, 1);
        assert_eq!(r.includes_max, 3);
        assert!((r.includes_mean - 2.0).abs() < 1e-12);
        assert!((r.density - 6.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn window_sharing_detects_shared_cube() {
        let m = model_with_sharing();
        let ws = window_sharing(&m, 4);
        assert_eq!(ws.len(), 2);
        // Window 0: cubes from clause(0,0) and clause(1,0) are identical.
        assert_eq!(ws[0].nontrivial, 2);
        assert_eq!(ws[0].distinct, 1);
        assert_eq!(ws[0].shared, 2);
        assert_eq!(ws[0].cross_class, 1);
        assert!((ws[0].sharing_ratio() - 0.5).abs() < 1e-12);
        // Window 1: two different cubes.
        assert_eq!(ws[1].nontrivial, 2);
        assert_eq!(ws[1].distinct, 2);
        assert_eq!(ws[1].shared, 0);
    }

    #[test]
    fn window_partitioning_handles_padding() {
        let m = model_with_sharing();
        let ws = window_sharing(&m, 5); // 8 features → windows of 5 and 3
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[1].width, 3);
    }

    #[test]
    fn empty_model_reports_zero_density() {
        let m = TrainedModel::from_masks(4, 2, 2, vec![IncludeMask::empty(4); 4]);
        let r = sparsity_report(&m);
        assert_eq!(r.includes, 0);
        assert_eq!(r.density, 0.0);
        assert_eq!(r.empty_clauses, 4);
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn window_sharing_rejects_zero_width() {
        window_sharing(&model_with_sharing(), 0);
    }
}
