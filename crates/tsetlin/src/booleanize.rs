//! Booleanization of raw (integer / real-valued) features.
//!
//! The TM consumes boolean literals, so raw sensor or pixel data must be
//! booleanized before training (the paper's pipeline does this before the
//! "Tsetlin Machine Inference" box of Fig 3). Two standard encoders are
//! provided: a single per-feature threshold and a thermometer encoder over
//! per-feature quantile cut points (the REDRESS-style encoding the authors
//! use for larger datasets).

use crate::bits::BitVec;
use std::fmt;

/// Error returned when an encoder is applied to data of the wrong width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeWidthError {
    expected: usize,
    got: usize,
}

impl fmt::Display for EncodeWidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "encoder fitted for {} features but input has {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for EncodeWidthError {}

/// Single-threshold booleanizer: bit `k` = `x_k > threshold_k`.
///
/// # Examples
///
/// ```
/// use tsetlin::booleanize::ThresholdEncoder;
///
/// let enc = ThresholdEncoder::fit_mean(&[vec![0.0, 10.0], vec![2.0, 20.0]]);
/// let bits = enc.encode(&[3.0, 5.0])?;
/// assert!(bits.get(0));   // 3.0 > mean(0,2)=1
/// assert!(!bits.get(1));  // 5.0 < mean(10,20)=15
/// # Ok::<(), tsetlin::booleanize::EncodeWidthError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThresholdEncoder {
    thresholds: Vec<f64>,
}

impl ThresholdEncoder {
    /// Creates an encoder from explicit per-feature thresholds.
    pub fn new(thresholds: Vec<f64>) -> Self {
        ThresholdEncoder { thresholds }
    }

    /// Fits per-feature thresholds to the mean of `data` (rows = samples).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or rows are ragged.
    pub fn fit_mean(data: &[Vec<f64>]) -> Self {
        assert!(!data.is_empty(), "cannot fit on empty data");
        let width = data[0].len();
        let mut sums = vec![0.0; width];
        for row in data {
            assert_eq!(row.len(), width, "ragged data");
            for (s, v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        let n = data.len() as f64;
        ThresholdEncoder {
            thresholds: sums.into_iter().map(|s| s / n).collect(),
        }
    }

    /// Number of raw input features.
    pub fn num_features(&self) -> usize {
        self.thresholds.len()
    }

    /// Output width in bits (equal to the feature count).
    pub fn output_bits(&self) -> usize {
        self.thresholds.len()
    }

    /// Encodes one raw sample.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeWidthError`] on width mismatch.
    pub fn encode(&self, raw: &[f64]) -> Result<BitVec, EncodeWidthError> {
        if raw.len() != self.thresholds.len() {
            return Err(EncodeWidthError {
                expected: self.thresholds.len(),
                got: raw.len(),
            });
        }
        Ok(raw
            .iter()
            .zip(&self.thresholds)
            .map(|(v, t)| v > t)
            .collect())
    }
}

/// Thermometer booleanizer: each feature expands to `levels` bits where bit
/// `l` is set iff the value exceeds the feature's `l`-th quantile cut.
///
/// Thermometer codes are monotone (`0011`, never `0101`), which the TM's
/// conjunctive clauses exploit: a clause including thermometer bit `l`
/// expresses `x ≥ cut_l` directly.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThermometerEncoder {
    /// `cuts[feature][level]`, ascending per feature.
    cuts: Vec<Vec<f64>>,
}

impl ThermometerEncoder {
    /// Fits `levels` quantile cut points per feature from `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, rows are ragged, or `levels == 0`.
    pub fn fit(data: &[Vec<f64>], levels: usize) -> Self {
        assert!(!data.is_empty(), "cannot fit on empty data");
        assert!(levels > 0, "levels must be ≥ 1");
        let width = data[0].len();
        let mut cuts = Vec::with_capacity(width);
        for f in 0..width {
            let mut column: Vec<f64> = data
                .iter()
                .map(|row| {
                    assert_eq!(row.len(), width, "ragged data");
                    row[f]
                })
                .collect();
            column.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN data"));
            let feature_cuts = (1..=levels)
                .map(|l| {
                    let q = l as f64 / (levels + 1) as f64;
                    let idx = ((column.len() - 1) as f64 * q).round() as usize;
                    column[idx]
                })
                .collect();
            cuts.push(feature_cuts);
        }
        ThermometerEncoder { cuts }
    }

    /// Number of raw input features.
    pub fn num_features(&self) -> usize {
        self.cuts.len()
    }

    /// Thermometer levels per feature.
    pub fn levels(&self) -> usize {
        self.cuts.first().map_or(0, Vec::len)
    }

    /// Output width in bits: `features × levels`.
    pub fn output_bits(&self) -> usize {
        self.num_features() * self.levels()
    }

    /// Encodes one raw sample; feature `f` occupies bits
    /// `[f*levels, (f+1)*levels)`.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeWidthError`] on width mismatch.
    pub fn encode(&self, raw: &[f64]) -> Result<BitVec, EncodeWidthError> {
        if raw.len() != self.cuts.len() {
            return Err(EncodeWidthError {
                expected: self.cuts.len(),
                got: raw.len(),
            });
        }
        let levels = self.levels();
        let mut out = BitVec::zeros(self.output_bits());
        for (f, (v, cuts)) in raw.iter().zip(&self.cuts).enumerate() {
            for (l, cut) in cuts.iter().enumerate() {
                if v > cut {
                    out.set(f * levels + l, true);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_encoder_mean_fit() {
        let data = vec![vec![0.0, 0.0], vec![10.0, 100.0]];
        let enc = ThresholdEncoder::fit_mean(&data);
        let bits = enc.encode(&[6.0, 40.0]).expect("width ok");
        assert!(bits.get(0));
        assert!(!bits.get(1));
    }

    #[test]
    fn threshold_encoder_rejects_bad_width() {
        let enc = ThresholdEncoder::new(vec![0.5; 3]);
        let err = enc.encode(&[1.0]).unwrap_err();
        assert!(err.to_string().contains("3 features"));
    }

    #[test]
    fn thermometer_is_monotone() {
        let data: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let enc = ThermometerEncoder::fit(&data, 4);
        for v in [0.0, 25.0, 55.0, 99.0] {
            let bits = enc.encode(&[v]).expect("width ok");
            // No 1 may follow a 0 within a feature's thermometer run.
            let mut seen_zero = false;
            for l in 0..4 {
                // Thermometer order: bit l set means v > cut_l; cuts ascend,
                // so set bits form a prefix.
                if !bits.get(l) {
                    seen_zero = true;
                } else {
                    assert!(!seen_zero, "non-monotone code for {v}");
                }
            }
        }
    }

    #[test]
    fn thermometer_levels_and_width() {
        let data: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, -(i as f64)]).collect();
        let enc = ThermometerEncoder::fit(&data, 3);
        assert_eq!(enc.num_features(), 2);
        assert_eq!(enc.levels(), 3);
        assert_eq!(enc.output_bits(), 6);
    }

    #[test]
    fn thermometer_extremes_saturate() {
        let data: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let enc = ThermometerEncoder::fit(&data, 5);
        assert_eq!(enc.encode(&[-1.0]).expect("ok").count_ones(), 0);
        assert_eq!(enc.encode(&[1e9]).expect("ok").count_ones(), 5);
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn fit_rejects_empty() {
        ThresholdEncoder::fit_mean(&[]);
    }
}
