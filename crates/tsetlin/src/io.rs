//! Text serialization of trained models.
//!
//! This is the interchange format of the toolflow's *yellow path* (Fig 6):
//! models trained outside MATADOR can be written in this format and imported
//! straight into design generation. The format is line-oriented and
//! diff-friendly:
//!
//! ```text
//! MATADOR-TM v1
//! features 784
//! classes 10
//! clauses_per_class 200
//! c 0 0 pos 3,17,42 neg 100,205
//! c 0 1 pos - neg 7
//! ...
//! end
//! ```
//!
//! Clause lines may be omitted for empty clauses; `pos -` / `neg -` denote
//! empty literal lists.

use crate::bits::BitVec;
use crate::model::{IncludeMask, TrainedModel};
use std::fmt;
use std::io::{BufRead, Write};

/// Error produced when parsing a model file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    line: usize,
    message: String,
}

impl ParseModelError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseModelError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number where parsing failed (0 for stream-level errors).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseModelError {}

/// Writes `model` in the MATADOR-TM v1 text format.
///
/// Empty clauses are skipped (they are reconstructed on read), which keeps
/// files roughly proportional to the include count — i.e. tiny, thanks to
/// the sparsity the paper leans on.
///
/// # Errors
///
/// Propagates I/O errors from `w`. A `&mut Vec<u8>` or `&mut` of any other
/// writer can be passed (writers are taken by value per `C-RW-VALUE`).
pub fn write_model<W: Write>(model: &TrainedModel, mut w: W) -> std::io::Result<()> {
    writeln!(w, "MATADOR-TM v1")?;
    writeln!(w, "features {}", model.num_features())?;
    writeln!(w, "classes {}", model.num_classes())?;
    writeln!(w, "clauses_per_class {}", model.clauses_per_class())?;
    for (class, j, mask) in model.iter_clauses() {
        if mask.num_includes() == 0 {
            continue;
        }
        write!(w, "c {class} {j} pos ")?;
        write_indices(&mut w, &mask.pos)?;
        write!(w, " neg ")?;
        write_indices(&mut w, &mask.neg)?;
        writeln!(w)?;
    }
    writeln!(w, "end")?;
    Ok(())
}

fn write_indices<W: Write>(w: &mut W, bits: &BitVec) -> std::io::Result<()> {
    if bits.count_ones() == 0 {
        return write!(w, "-");
    }
    let mut first = true;
    for i in bits.iter_ones() {
        if !first {
            write!(w, ",")?;
        }
        write!(w, "{i}")?;
        first = false;
    }
    Ok(())
}

/// Reads a model written by [`write_model`] (or produced by an external
/// trainer following the same format).
///
/// # Errors
///
/// Returns [`ParseModelError`] on malformed headers, out-of-range indices,
/// duplicate clause lines or a missing `end` marker.
pub fn read_model<R: BufRead>(r: R) -> Result<TrainedModel, ParseModelError> {
    let mut lines = r.lines().enumerate();
    let mut next_line = |expect: &str| -> Result<(usize, String), ParseModelError> {
        match lines.next() {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(ParseModelError::new(i + 1, format!("io error: {e}"))),
            None => Err(ParseModelError::new(0, format!("unexpected eof, wanted {expect}"))),
        }
    };

    let (ln, magic) = next_line("magic header")?;
    if magic.trim() != "MATADOR-TM v1" {
        return Err(ParseModelError::new(ln, "missing MATADOR-TM v1 header"));
    }
    let features = parse_header_line(next_line("features")?, "features")?;
    let classes = parse_header_line(next_line("classes")?, "classes")?;
    let clauses_per_class =
        parse_header_line(next_line("clauses_per_class")?, "clauses_per_class")?;
    if features == 0 || classes == 0 || clauses_per_class == 0 {
        return Err(ParseModelError::new(0, "zero-sized model dimensions"));
    }

    let mut masks = vec![IncludeMask::empty(features); classes * clauses_per_class];
    let mut seen = vec![false; masks.len()];
    let mut ended = false;
    for (i, line) in lines {
        let ln = i + 1;
        let line = line.map_err(|e| ParseModelError::new(ln, format!("io error: {e}")))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "end" {
            ended = true;
            break;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("c") {
            return Err(ParseModelError::new(ln, "expected clause line starting with 'c'"));
        }
        let class: usize = parse_tok(&mut parts, ln, "class index")?;
        let j: usize = parse_tok(&mut parts, ln, "clause index")?;
        if class >= classes || j >= clauses_per_class {
            return Err(ParseModelError::new(ln, "clause coordinates out of range"));
        }
        let idx = class * clauses_per_class + j;
        if seen[idx] {
            return Err(ParseModelError::new(ln, "duplicate clause line"));
        }
        seen[idx] = true;
        expect_tok(&mut parts, ln, "pos")?;
        let pos = parse_index_list(&mut parts, ln, features)?;
        expect_tok(&mut parts, ln, "neg")?;
        let neg = parse_index_list(&mut parts, ln, features)?;
        masks[idx] = IncludeMask { pos, neg };
    }
    if !ended {
        return Err(ParseModelError::new(0, "missing end marker"));
    }
    Ok(TrainedModel::from_masks(
        features,
        classes,
        clauses_per_class,
        masks,
    ))
}

fn parse_header_line(
    (ln, line): (usize, String),
    key: &str,
) -> Result<usize, ParseModelError> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some(key) {
        return Err(ParseModelError::new(ln, format!("expected '{key} <n>'")));
    }
    parse_tok(&mut parts, ln, key)
}

fn parse_tok<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    ln: usize,
    what: &str,
) -> Result<T, ParseModelError> {
    parts
        .next()
        .ok_or_else(|| ParseModelError::new(ln, format!("missing {what}")))?
        .parse()
        .map_err(|_| ParseModelError::new(ln, format!("unparseable {what}")))
}

fn expect_tok<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    ln: usize,
    tok: &str,
) -> Result<(), ParseModelError> {
    if parts.next() == Some(tok) {
        Ok(())
    } else {
        Err(ParseModelError::new(ln, format!("expected '{tok}'")))
    }
}

fn parse_index_list<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    ln: usize,
    features: usize,
) -> Result<BitVec, ParseModelError> {
    let tok = parts
        .next()
        .ok_or_else(|| ParseModelError::new(ln, "missing literal list"))?;
    let mut bits = BitVec::zeros(features);
    if tok == "-" {
        return Ok(bits);
    }
    for piece in tok.split(',') {
        let i: usize = piece
            .parse()
            .map_err(|_| ParseModelError::new(ln, format!("bad literal index '{piece}'")))?;
        if i >= features {
            return Err(ParseModelError::new(
                ln,
                format!("literal index {i} out of range (features {features})"),
            ));
        }
        bits.set(i, true);
    }
    Ok(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrainedModel;

    fn sample_model() -> TrainedModel {
        let f = 6;
        let mk = |pos: &[usize], neg: &[usize]| IncludeMask {
            pos: BitVec::from_indices(f, pos),
            neg: BitVec::from_indices(f, neg),
        };
        TrainedModel::from_masks(
            f,
            2,
            2,
            vec![mk(&[0, 5], &[2]), mk(&[], &[]), mk(&[3], &[0, 1]), mk(&[2], &[])],
        )
    }

    #[test]
    fn roundtrip_preserves_model() {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("write");
        let parsed = read_model(buf.as_slice()).expect("parse");
        assert_eq!(parsed, model);
    }

    #[test]
    fn empty_clauses_are_omitted_but_reconstructed() {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text.lines().filter(|l| l.starts_with("c ")).count(), 3);
        let parsed = read_model(text.as_bytes()).expect("parse");
        assert_eq!(parsed.clause(0, 1).num_includes(), 0);
    }

    #[test]
    fn rejects_missing_header() {
        let err = read_model("bogus\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn rejects_out_of_range_literal() {
        let text = "MATADOR-TM v1\nfeatures 4\nclasses 2\nclauses_per_class 2\nc 0 0 pos 9 neg -\nend\n";
        let err = read_model(text.as_bytes()).unwrap_err();
        assert_eq!(err.line(), 5);
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_duplicate_clause() {
        let text = "MATADOR-TM v1\nfeatures 4\nclasses 2\nclauses_per_class 2\nc 0 0 pos 1 neg -\nc 0 0 pos 2 neg -\nend\n";
        let err = read_model(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_missing_end() {
        let text = "MATADOR-TM v1\nfeatures 4\nclasses 2\nclauses_per_class 2\n";
        let err = read_model(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing end"));
    }

    #[test]
    fn tolerates_comments_and_blank_lines() {
        let text = "MATADOR-TM v1\nfeatures 4\nclasses 2\nclauses_per_class 2\n\n# external trainer note\nc 1 1 pos 0 neg 3\nend\n";
        let model = read_model(text.as_bytes()).expect("parse");
        assert_eq!(model.clause(1, 1).num_includes(), 2);
    }

    #[test]
    fn rejects_out_of_range_clause_coordinates() {
        let text = "MATADOR-TM v1\nfeatures 4\nclasses 2\nclauses_per_class 2\nc 5 0 pos 1 neg -\nend\n";
        assert!(read_model(text.as_bytes()).is_err());
    }
}
