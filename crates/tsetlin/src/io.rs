//! Text serialization of trained models.
//!
//! This is the interchange format of the toolflow's *yellow path* (Fig 6):
//! models trained outside MATADOR can be written in this format and imported
//! straight into design generation. The format is line-oriented and
//! diff-friendly:
//!
//! ```text
//! MATADOR-TM v1
//! features 784
//! classes 10
//! clauses_per_class 200
//! c 0 0 pos 3,17,42 neg 100,205
//! c 0 1 pos - neg 7
//! ...
//! end
//! ```
//!
//! Clause lines may be omitted for empty clauses; `pos -` / `neg -` denote
//! empty literal lists.

use crate::bits::BitVec;
use crate::model::{IncludeMask, TrainedModel};
use std::fmt;
use std::io::{BufRead, Write};

/// Error produced when parsing a model file fails.
#[derive(Debug)]
pub struct ParseModelError {
    line: usize,
    kind: ParseModelErrorKind,
}

/// What went wrong while parsing; each variant carries the offending
/// values so import tooling can react without scraping message strings.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParseModelErrorKind {
    /// The first line was not `MATADOR-TM v1`.
    MissingHeader,
    /// The stream ended before the named element was seen.
    UnexpectedEof {
        /// What the parser was looking for.
        wanted: String,
    },
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A header line did not match `<key> <n>`.
    MalformedHeader {
        /// The expected key (`features`, `classes`, `clauses_per_class`).
        key: String,
    },
    /// A required token was absent or unparseable.
    BadToken {
        /// What the token encodes.
        what: String,
    },
    /// An expected literal keyword (`pos`, `neg`) was missing.
    ExpectedKeyword {
        /// The missing keyword.
        keyword: String,
    },
    /// A header dimension was zero.
    ZeroDimensions,
    /// A non-header line did not start with `c`.
    ExpectedClauseLine,
    /// Clause coordinates exceeded the declared model shape.
    ClauseOutOfRange {
        /// Parsed class index.
        class: usize,
        /// Parsed clause index.
        clause: usize,
    },
    /// The same `(class, clause)` appeared twice.
    DuplicateClause {
        /// Class index of the duplicate.
        class: usize,
        /// Clause index of the duplicate.
        clause: usize,
    },
    /// A literal index was not a number.
    BadLiteralIndex {
        /// The offending token.
        token: String,
    },
    /// A literal index exceeded the feature count.
    LiteralOutOfRange {
        /// The out-of-range index.
        index: usize,
        /// The declared feature count.
        features: usize,
    },
    /// The `end` marker never appeared.
    MissingEnd,
}

impl ParseModelError {
    fn new(line: usize, kind: ParseModelErrorKind) -> Self {
        ParseModelError { line, kind }
    }

    /// 1-based line number where parsing failed (0 for stream-level errors).
    pub fn line(&self) -> usize {
        self.line
    }

    /// The typed failure cause.
    pub fn kind(&self) -> &ParseModelErrorKind {
        &self.kind
    }
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model parse error at line {}: ", self.line)?;
        match &self.kind {
            ParseModelErrorKind::MissingHeader => write!(f, "missing MATADOR-TM v1 header"),
            ParseModelErrorKind::UnexpectedEof { wanted } => {
                write!(f, "unexpected eof, wanted {wanted}")
            }
            ParseModelErrorKind::Io(e) => write!(f, "io error: {e}"),
            ParseModelErrorKind::MalformedHeader { key } => write!(f, "expected '{key} <n>'"),
            ParseModelErrorKind::BadToken { what } => write!(f, "missing or unparseable {what}"),
            ParseModelErrorKind::ExpectedKeyword { keyword } => {
                write!(f, "expected '{keyword}'")
            }
            ParseModelErrorKind::ZeroDimensions => write!(f, "zero-sized model dimensions"),
            ParseModelErrorKind::ExpectedClauseLine => {
                write!(f, "expected clause line starting with 'c'")
            }
            ParseModelErrorKind::ClauseOutOfRange { class, clause } => {
                write!(f, "clause coordinates ({class}, {clause}) out of range")
            }
            ParseModelErrorKind::DuplicateClause { class, clause } => {
                write!(f, "duplicate clause line for ({class}, {clause})")
            }
            ParseModelErrorKind::BadLiteralIndex { token } => {
                write!(f, "bad literal index '{token}'")
            }
            ParseModelErrorKind::LiteralOutOfRange { index, features } => {
                write!(
                    f,
                    "literal index {index} out of range (features {features})"
                )
            }
            ParseModelErrorKind::MissingEnd => write!(f, "missing end marker"),
        }
    }
}

impl std::error::Error for ParseModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            ParseModelErrorKind::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Writes `model` in the MATADOR-TM v1 text format.
///
/// Empty clauses are skipped (they are reconstructed on read), which keeps
/// files roughly proportional to the include count — i.e. tiny, thanks to
/// the sparsity the paper leans on.
///
/// # Errors
///
/// Propagates I/O errors from `w`. A `&mut Vec<u8>` or `&mut` of any other
/// writer can be passed (writers are taken by value per `C-RW-VALUE`).
pub fn write_model<W: Write>(model: &TrainedModel, mut w: W) -> std::io::Result<()> {
    writeln!(w, "MATADOR-TM v1")?;
    writeln!(w, "features {}", model.num_features())?;
    writeln!(w, "classes {}", model.num_classes())?;
    writeln!(w, "clauses_per_class {}", model.clauses_per_class())?;
    for (class, j, mask) in model.iter_clauses() {
        if mask.num_includes() == 0 {
            continue;
        }
        write!(w, "c {class} {j} pos ")?;
        write_indices(&mut w, &mask.pos)?;
        write!(w, " neg ")?;
        write_indices(&mut w, &mask.neg)?;
        writeln!(w)?;
    }
    writeln!(w, "end")?;
    Ok(())
}

fn write_indices<W: Write>(w: &mut W, bits: &BitVec) -> std::io::Result<()> {
    if bits.count_ones() == 0 {
        return write!(w, "-");
    }
    let mut first = true;
    for i in bits.iter_ones() {
        if !first {
            write!(w, ",")?;
        }
        write!(w, "{i}")?;
        first = false;
    }
    Ok(())
}

/// Reads a model written by [`write_model`] (or produced by an external
/// trainer following the same format).
///
/// # Errors
///
/// Returns [`ParseModelError`] on malformed headers, out-of-range indices,
/// duplicate clause lines or a missing `end` marker.
pub fn read_model<R: BufRead>(r: R) -> Result<TrainedModel, ParseModelError> {
    let mut lines = r.lines().enumerate();
    let mut next_line = |expect: &str| -> Result<(usize, String), ParseModelError> {
        match lines.next() {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(ParseModelError::new(i + 1, ParseModelErrorKind::Io(e))),
            None => Err(ParseModelError::new(
                0,
                ParseModelErrorKind::UnexpectedEof {
                    wanted: expect.to_string(),
                },
            )),
        }
    };

    let (ln, magic) = next_line("magic header")?;
    if magic.trim() != "MATADOR-TM v1" {
        return Err(ParseModelError::new(ln, ParseModelErrorKind::MissingHeader));
    }
    let features = parse_header_line(next_line("features")?, "features")?;
    let classes = parse_header_line(next_line("classes")?, "classes")?;
    let clauses_per_class =
        parse_header_line(next_line("clauses_per_class")?, "clauses_per_class")?;
    if features == 0 || classes == 0 || clauses_per_class == 0 {
        return Err(ParseModelError::new(0, ParseModelErrorKind::ZeroDimensions));
    }

    let mut masks = vec![IncludeMask::empty(features); classes * clauses_per_class];
    let mut seen = vec![false; masks.len()];
    let mut ended = false;
    for (i, line) in lines {
        let ln = i + 1;
        let line = line.map_err(|e| ParseModelError::new(ln, ParseModelErrorKind::Io(e)))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "end" {
            ended = true;
            break;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("c") {
            return Err(ParseModelError::new(
                ln,
                ParseModelErrorKind::ExpectedClauseLine,
            ));
        }
        let class: usize = parse_tok(&mut parts, ln, "class index")?;
        let j: usize = parse_tok(&mut parts, ln, "clause index")?;
        if class >= classes || j >= clauses_per_class {
            return Err(ParseModelError::new(
                ln,
                ParseModelErrorKind::ClauseOutOfRange { class, clause: j },
            ));
        }
        let idx = class * clauses_per_class + j;
        if seen[idx] {
            return Err(ParseModelError::new(
                ln,
                ParseModelErrorKind::DuplicateClause { class, clause: j },
            ));
        }
        seen[idx] = true;
        expect_tok(&mut parts, ln, "pos")?;
        let pos = parse_index_list(&mut parts, ln, features)?;
        expect_tok(&mut parts, ln, "neg")?;
        let neg = parse_index_list(&mut parts, ln, features)?;
        masks[idx] = IncludeMask { pos, neg };
    }
    if !ended {
        return Err(ParseModelError::new(0, ParseModelErrorKind::MissingEnd));
    }
    Ok(TrainedModel::from_masks(
        features,
        classes,
        clauses_per_class,
        masks,
    ))
}

fn parse_header_line((ln, line): (usize, String), key: &str) -> Result<usize, ParseModelError> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some(key) {
        return Err(ParseModelError::new(
            ln,
            ParseModelErrorKind::MalformedHeader {
                key: key.to_string(),
            },
        ));
    }
    parse_tok(&mut parts, ln, key)
}

fn parse_tok<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    ln: usize,
    what: &str,
) -> Result<T, ParseModelError> {
    parts
        .next()
        .ok_or_else(|| {
            ParseModelError::new(
                ln,
                ParseModelErrorKind::BadToken {
                    what: what.to_string(),
                },
            )
        })?
        .parse()
        .map_err(|_| {
            ParseModelError::new(
                ln,
                ParseModelErrorKind::BadToken {
                    what: what.to_string(),
                },
            )
        })
}

fn expect_tok<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    ln: usize,
    tok: &str,
) -> Result<(), ParseModelError> {
    if parts.next() == Some(tok) {
        Ok(())
    } else {
        Err(ParseModelError::new(
            ln,
            ParseModelErrorKind::ExpectedKeyword {
                keyword: tok.to_string(),
            },
        ))
    }
}

fn parse_index_list<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    ln: usize,
    features: usize,
) -> Result<BitVec, ParseModelError> {
    let tok = parts.next().ok_or_else(|| {
        ParseModelError::new(
            ln,
            ParseModelErrorKind::BadToken {
                what: "literal list".to_string(),
            },
        )
    })?;
    let mut bits = BitVec::zeros(features);
    if tok == "-" {
        return Ok(bits);
    }
    for piece in tok.split(',') {
        let i: usize = piece.parse().map_err(|_| {
            ParseModelError::new(
                ln,
                ParseModelErrorKind::BadLiteralIndex {
                    token: piece.to_string(),
                },
            )
        })?;
        if i >= features {
            return Err(ParseModelError::new(
                ln,
                ParseModelErrorKind::LiteralOutOfRange { index: i, features },
            ));
        }
        bits.set(i, true);
    }
    Ok(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrainedModel;

    fn sample_model() -> TrainedModel {
        let f = 6;
        let mk = |pos: &[usize], neg: &[usize]| IncludeMask {
            pos: BitVec::from_indices(f, pos),
            neg: BitVec::from_indices(f, neg),
        };
        TrainedModel::from_masks(
            f,
            2,
            2,
            vec![
                mk(&[0, 5], &[2]),
                mk(&[], &[]),
                mk(&[3], &[0, 1]),
                mk(&[2], &[]),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_model() {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("write");
        let parsed = read_model(buf.as_slice()).expect("parse");
        assert_eq!(parsed, model);
    }

    #[test]
    fn empty_clauses_are_omitted_but_reconstructed() {
        let model = sample_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text.lines().filter(|l| l.starts_with("c ")).count(), 3);
        let parsed = read_model(text.as_bytes()).expect("parse");
        assert_eq!(parsed.clause(0, 1).num_includes(), 0);
    }

    #[test]
    fn rejects_missing_header() {
        let err = read_model("bogus\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn rejects_out_of_range_literal() {
        let text =
            "MATADOR-TM v1\nfeatures 4\nclasses 2\nclauses_per_class 2\nc 0 0 pos 9 neg -\nend\n";
        let err = read_model(text.as_bytes()).unwrap_err();
        assert_eq!(err.line(), 5);
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_duplicate_clause() {
        let text = "MATADOR-TM v1\nfeatures 4\nclasses 2\nclauses_per_class 2\nc 0 0 pos 1 neg -\nc 0 0 pos 2 neg -\nend\n";
        let err = read_model(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_missing_end() {
        let text = "MATADOR-TM v1\nfeatures 4\nclasses 2\nclauses_per_class 2\n";
        let err = read_model(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing end"));
    }

    #[test]
    fn tolerates_comments_and_blank_lines() {
        let text = "MATADOR-TM v1\nfeatures 4\nclasses 2\nclauses_per_class 2\n\n# external trainer note\nc 1 1 pos 0 neg 3\nend\n";
        let model = read_model(text.as_bytes()).expect("parse");
        assert_eq!(model.clause(1, 1).num_includes(), 2);
    }

    #[test]
    fn rejects_out_of_range_clause_coordinates() {
        let text =
            "MATADOR-TM v1\nfeatures 4\nclasses 2\nclauses_per_class 2\nc 5 0 pos 1 neg -\nend\n";
        assert!(read_model(text.as_bytes()).is_err());
    }
}
