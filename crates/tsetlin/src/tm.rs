//! The multiclass Tsetlin Machine: clause voting, class sums and the
//! Type I / Type II feedback schedule (Fig 1(a) of the paper).
//!
//! # Training parallelism
//!
//! [`MultiClassTm::fit`] exploits the per-class independence of TM
//! feedback (each class's clause bank is only ever updated from its own
//! class sum): every epoch draws one `epoch_seed` from the caller's RNG,
//! then derives independent streams from it via
//! [`matador_par::split_seed`] — one for the sample shuffle, one for the
//! per-sample negative-class draws, and one per class for the feedback
//! coin flips. Classes are then updated concurrently with
//! [`matador_par::par_map_mut`]. Because no RNG stream ever crosses a
//! class boundary, the trained machine is **bit-identical at every
//! thread count** (`MATADOR_THREADS=1` included), which the
//! `parallel_equivalence` suite asserts end-to-end.

use crate::bits::BitVec;
use crate::clause::Clause;
use crate::model::TrainedModel;
use crate::params::TmParams;
use crate::Sample;
use matador_par::split_seed;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Seed-split stream tag for the per-epoch sample shuffle.
const STREAM_SHUFFLE: u64 = 0;
/// Seed-split stream tag for the per-sample negative-class draws.
const STREAM_NEGATIVE: u64 = 1;
/// Base stream tag for per-class feedback RNGs (`base + class_idx`).
const STREAM_CLASS_BASE: u64 = 2;

/// Polarity of a clause's vote. Clauses alternate polarity by index:
/// even → positive, odd → negative (the paper's `[+1, -1]` alternation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Polarity {
    /// Votes `+1` when the clause fires.
    Positive,
    /// Votes `-1` when the clause fires.
    Negative,
}

impl Polarity {
    /// Polarity assigned to clause index `j` within its class.
    pub fn of_index(j: usize) -> Polarity {
        if j.is_multiple_of(2) {
            Polarity::Positive
        } else {
            Polarity::Negative
        }
    }

    /// The vote contribution when the clause fires.
    pub fn vote(self) -> i32 {
        match self {
            Polarity::Positive => 1,
            Polarity::Negative => -1,
        }
    }
}

/// A trainable multiclass Tsetlin Machine.
///
/// # Examples
///
/// ```
/// use tsetlin::{MultiClassTm, Sample, TmParams};
/// use tsetlin::bits::BitVec;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = TmParams::builder(4, 2).clauses_per_class(4).build()?;
/// let mut tm = MultiClassTm::new(params);
/// let data = vec![
///     Sample::new(BitVec::from_indices(4, &[0, 1]), 0),
///     Sample::new(BitVec::from_indices(4, &[2, 3]), 1),
/// ];
/// let mut rng = SmallRng::seed_from_u64(1);
/// tm.fit(&data, 20, &mut rng);
/// assert_eq!(tm.predict(&data[0].input), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiClassTm {
    params: TmParams,
    /// `clauses[class][j]`.
    clauses: Vec<Vec<Clause>>,
}

impl MultiClassTm {
    /// Creates an untrained machine (all automata at the boundary exclude
    /// state; every clause is the constant-1 empty clause).
    pub fn new(params: TmParams) -> Self {
        let clauses = (0..params.classes())
            .map(|_| {
                (0..params.clauses_per_class())
                    .map(|_| Clause::new(params.features(), params.states_per_action()))
                    .collect()
            })
            .collect();
        MultiClassTm { params, clauses }
    }

    /// The hyperparameters this machine was built with.
    pub fn params(&self) -> &TmParams {
        &self.params
    }

    /// Borrow of the clauses of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn class_clauses(&self, class: usize) -> &[Clause] {
        &self.clauses[class]
    }

    /// Polarity-weighted vote total of `class` on input `x` (with
    /// precomputed complement `x_neg`). Unclamped.
    pub fn class_sum(&self, class: usize, x: &BitVec, x_neg: &BitVec) -> i32 {
        bank_class_sum(&self.clauses[class], x, x_neg)
    }

    /// All class sums for input `x`.
    pub fn class_sums(&self, x: &BitVec) -> Vec<i32> {
        let x_neg = x.not();
        (0..self.params.classes())
            .map(|c| self.class_sum(c, x, &x_neg))
            .collect()
    }

    /// Predicted class (argmax of class sums; ties break to the lowest
    /// index, matching the hardware comparison tree).
    pub fn predict(&self, x: &BitVec) -> usize {
        argmax(&self.class_sums(x))
    }

    /// One stochastic update on a single labelled sample: Type I feedback
    /// toward the target class, Type II against one random other class.
    ///
    /// # Panics
    ///
    /// Panics if `label >= classes` or the input width mismatches.
    pub fn update<R: Rng + ?Sized>(&mut self, sample: &Sample, rng: &mut R) {
        let classes = self.params.classes();
        assert!(sample.label < classes, "label out of range");
        assert_eq!(
            sample.input.len(),
            self.params.features(),
            "input width mismatch"
        );
        let x = &sample.input;
        let x_neg = x.not();

        // Target class: raise its margin.
        self.feedback_sample(sample.label, x, &x_neg, true, rng);

        // One random negative class: suppress its margin.
        if classes > 1 {
            let mut negative = rng.gen_range(0..classes - 1);
            if negative >= sample.label {
                negative += 1;
            }
            self.feedback_sample(negative, x, &x_neg, false, rng);
        }
    }

    /// Runs `epochs` passes over `samples` (shuffled each epoch), spread
    /// over [`matador_par::configured_threads`] worker threads.
    ///
    /// Training is deterministic per `rng` seed and — by the per-class
    /// seed-splitting scheme described in the module docs — bit-identical
    /// at every thread count. See [`MultiClassTm::fit_with_threads`] for
    /// an explicit thread count.
    ///
    /// # Panics
    ///
    /// Panics if any sample's label is out of range or its input width
    /// mismatches the machine's feature count.
    pub fn fit<R: Rng + ?Sized>(&mut self, samples: &[Sample], epochs: usize, rng: &mut R) {
        self.fit_with_threads(samples, epochs, rng, matador_par::configured_threads());
    }

    /// [`MultiClassTm::fit`] with an explicit worker-thread count
    /// (`1` forces the sequential in-caller path).
    ///
    /// The result does not depend on `threads` — only how the identical
    /// per-class work is scheduled.
    ///
    /// # Panics
    ///
    /// Panics if any sample's label is out of range or its input width
    /// mismatches the machine's feature count.
    pub fn fit_with_threads<R: Rng + ?Sized>(
        &mut self,
        samples: &[Sample],
        epochs: usize,
        rng: &mut R,
        threads: usize,
    ) {
        if samples.is_empty() {
            return;
        }
        let classes = self.params.classes();
        for sample in samples {
            assert!(sample.label < classes, "label out of range");
            assert_eq!(
                sample.input.len(),
                self.params.features(),
                "input width mismatch"
            );
        }
        // Complements are input-only; hoist them out of the epoch loop.
        let x_negs: Vec<BitVec> = samples.iter().map(|s| s.input.not()).collect();
        for _ in 0..epochs {
            let epoch_seed: u64 = rng.gen();
            self.epoch_pass(samples, &x_negs, epoch_seed, threads);
        }
    }

    /// One epoch of the deterministic parallel schedule: shuffle and
    /// negative-class draws come from their own `epoch_seed`-derived
    /// streams, then every class replays the sample stream concurrently
    /// with a class-local RNG.
    fn epoch_pass(
        &mut self,
        samples: &[Sample],
        x_negs: &[BitVec],
        epoch_seed: u64,
        threads: usize,
    ) {
        let classes = self.params.classes();

        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut shuffle_rng = SmallRng::seed_from_u64(split_seed(epoch_seed, STREAM_SHUFFLE));
        order.shuffle(&mut shuffle_rng);

        // Pre-draw each sample's negative class in stream order, so the
        // per-class passes agree on which class suppresses which sample
        // without sharing an RNG.
        let mut negatives = vec![usize::MAX; samples.len()];
        if classes > 1 {
            let mut neg_rng = SmallRng::seed_from_u64(split_seed(epoch_seed, STREAM_NEGATIVE));
            for &i in &order {
                let mut negative = neg_rng.gen_range(0..classes - 1);
                if negative >= samples[i].label {
                    negative += 1;
                }
                negatives[i] = negative;
            }
        }

        let params = &self.params;
        matador_par::par_map_mut_with(threads, &mut self.clauses, |class, clauses| {
            let mut rng =
                SmallRng::seed_from_u64(split_seed(epoch_seed, STREAM_CLASS_BASE + class as u64));
            for &i in &order {
                let sample = &samples[i];
                let is_target = sample.label == class;
                if !is_target && negatives[i] != class {
                    continue;
                }
                feedback_clause_bank(
                    params,
                    clauses,
                    &sample.input,
                    &x_negs[i],
                    is_target,
                    &mut rng,
                );
            }
        });
    }

    /// Fraction of `samples` classified correctly.
    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|s| self.predict(&s.input) == s.label)
            .count();
        correct as f64 / samples.len() as f64
    }

    /// Snapshots the learned include/exclude decisions as a
    /// [`TrainedModel`] — the boolean sequence MATADOR lowers to RTL.
    pub fn to_model(&self) -> TrainedModel {
        TrainedModel::from_clauses(&self.params, &self.clauses)
    }

    fn feedback_sample<R: Rng + ?Sized>(
        &mut self,
        class: usize,
        x: &BitVec,
        x_neg: &BitVec,
        is_target: bool,
        rng: &mut R,
    ) {
        let params = &self.params;
        feedback_clause_bank(params, &mut self.clauses[class], x, x_neg, is_target, rng);
    }
}

/// Polarity-weighted vote total of one class's clause bank (unclamped).
fn bank_class_sum(clauses: &[Clause], x: &BitVec, x_neg: &BitVec) -> i32 {
    clauses
        .iter()
        .enumerate()
        .map(|(j, c)| {
            if c.evaluate(x, x_neg) {
                Polarity::of_index(j).vote()
            } else {
                0
            }
        })
        .sum()
}

/// One sample's feedback onto a single class's clause bank — the unit of
/// work the parallel schedule hands to each class. Reads and writes only
/// `clauses` (plus the class-local `rng`), which is what makes per-class
/// parallelism sound and thread-count-invariant.
fn feedback_clause_bank<R: Rng + ?Sized>(
    params: &TmParams,
    clauses: &mut [Clause],
    x: &BitVec,
    x_neg: &BitVec,
    is_target: bool,
    rng: &mut R,
) {
    let t = params.threshold() as i32;
    let sum = bank_class_sum(clauses, x, x_neg).clamp(-t, t);
    let p_update = if is_target {
        (t - sum) as f64 / (2 * t) as f64
    } else {
        (t + sum) as f64 / (2 * t) as f64
    };
    let s = params.specificity();
    let boost = params.boost_true_positive();
    for (j, clause) in clauses.iter_mut().enumerate() {
        if rng.gen::<f64>() >= p_update {
            continue;
        }
        let output = clause.evaluate(x, x_neg);
        let type_i = match (is_target, Polarity::of_index(j)) {
            (true, Polarity::Positive) | (false, Polarity::Negative) => true,
            (true, Polarity::Negative) | (false, Polarity::Positive) => false,
        };
        if type_i {
            clause.type_i_feedback(x, output, s, boost, rng);
        } else {
            clause.type_ii_feedback(x, output);
        }
    }
}

/// Index of the maximum element, lowest index on ties — the same
/// tie-breaking rule as the generated argmax comparison tree.
pub fn argmax(sums: &[i32]) -> usize {
    let mut best = 0usize;
    for (i, &v) in sums.iter().enumerate().skip(1) {
        if v > sums[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy_params() -> TmParams {
        TmParams::builder(8, 2)
            .clauses_per_class(20)
            .threshold(8)
            .specificity(3.0)
            .states_per_action(32)
            .build()
            .expect("valid params")
    }

    fn toy_data() -> Vec<Sample> {
        // Class 0: low half set; class 1: high half set.
        let mut data = Vec::new();
        for v in 0..16u32 {
            let mut low = vec![false; 8];
            let mut high = vec![false; 8];
            for b in 0..4 {
                low[b] = (v >> b) & 1 == 1 || b == 0;
                high[4 + b] = (v >> b) & 1 == 1 || b == 0;
            }
            data.push(Sample::new(BitVec::from_bools(low), 0));
            data.push(Sample::new(BitVec::from_bools(high), 1));
        }
        data
    }

    #[test]
    fn untrained_machine_votes_cancel() {
        let tm = MultiClassTm::new(toy_params());
        let x = BitVec::from_indices(8, &[0, 1]);
        // Every clause is empty → outputs 1; polarity alternation cancels.
        assert_eq!(tm.class_sums(&x), vec![0, 0]);
    }

    #[test]
    fn learns_linearly_separable_toy_task() {
        let mut tm = MultiClassTm::new(toy_params());
        let data = toy_data();
        let mut rng = SmallRng::seed_from_u64(99);
        tm.fit(&data, 80, &mut rng);
        let acc = tm.accuracy(&data);
        assert!(acc >= 0.95, "accuracy {acc} below 0.95");
    }

    #[test]
    fn polarity_alternates_by_index() {
        assert_eq!(Polarity::of_index(0), Polarity::Positive);
        assert_eq!(Polarity::of_index(1), Polarity::Negative);
        assert_eq!(Polarity::of_index(7).vote(), -1);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[3, 5, 5, 1]), 1);
        assert_eq!(argmax(&[0, 0]), 0);
        assert_eq!(argmax(&[-4]), 0);
    }

    #[test]
    fn model_snapshot_agrees_with_machine() {
        let mut tm = MultiClassTm::new(toy_params());
        let data = toy_data();
        let mut rng = SmallRng::seed_from_u64(5);
        tm.fit(&data, 15, &mut rng);
        let model = tm.to_model();
        for s in &data {
            assert_eq!(
                model.class_sums(&s.input),
                tm.class_sums(&s.input),
                "model/machine divergence"
            );
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn update_rejects_bad_label() {
        let mut tm = MultiClassTm::new(toy_params());
        let mut rng = SmallRng::seed_from_u64(0);
        let s = Sample::new(BitVec::zeros(8), 9);
        tm.update(&s, &mut rng);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn update_rejects_bad_width() {
        let mut tm = MultiClassTm::new(toy_params());
        let mut rng = SmallRng::seed_from_u64(0);
        let s = Sample::new(BitVec::zeros(4), 0);
        tm.update(&s, &mut rng);
    }

    #[test]
    fn accuracy_of_empty_set_is_zero() {
        let tm = MultiClassTm::new(toy_params());
        assert_eq!(tm.accuracy(&[]), 0.0);
    }

    #[test]
    fn fit_on_empty_training_set_is_a_no_op() {
        let mut tm = MultiClassTm::new(toy_params());
        let reference = tm.to_model();
        let mut rng = SmallRng::seed_from_u64(1);
        tm.fit(&[], 10, &mut rng);
        assert_eq!(tm.to_model(), reference);
    }

    #[test]
    fn fit_is_bit_identical_across_thread_counts() {
        let data = toy_data();
        let mut reference = MultiClassTm::new(toy_params());
        let mut rng = SmallRng::seed_from_u64(31);
        reference.fit_with_threads(&data, 12, &mut rng, 1);
        let reference = reference.to_model();
        for threads in [2, 3, 8] {
            let mut tm = MultiClassTm::new(toy_params());
            let mut rng = SmallRng::seed_from_u64(31);
            tm.fit_with_threads(&data, 12, &mut rng, threads);
            assert_eq!(tm.to_model(), reference, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn fit_rejects_bad_label() {
        let mut tm = MultiClassTm::new(toy_params());
        let mut rng = SmallRng::seed_from_u64(0);
        let s = Sample::new(BitVec::zeros(8), 9);
        tm.fit(&[s], 1, &mut rng);
    }
}
