//! Hyperparameters of the multiclass Tsetlin Machine.

use std::fmt;

/// Error returned when [`TmParams`] validation fails.
///
/// Each variant names the violated constraint and carries the offending
/// value, so callers (the wizard, parameter sweeps, config loaders) can
/// match on the failure instead of scraping a message string.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum InvalidParamsError {
    /// `features` was 0; at least one boolean input is required.
    ZeroFeatures,
    /// Fewer than two classes.
    TooFewClasses {
        /// The rejected class count.
        classes: usize,
    },
    /// `clauses_per_class` was odd or below 2 (clauses come in ± pairs).
    InvalidClauseCount {
        /// The rejected clause budget.
        clauses_per_class: usize,
    },
    /// The vote threshold `T` was 0.
    ZeroThreshold,
    /// Specificity `s` must be strictly greater than 1.0.
    SpecificityTooLow {
        /// The rejected specificity.
        specificity: f64,
    },
    /// Fewer than two automaton states per action side.
    TooFewStates {
        /// The rejected per-side state count.
        states_per_action: u16,
    },
}

impl fmt::Display for InvalidParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid tsetlin machine parameters: ")?;
        match *self {
            InvalidParamsError::ZeroFeatures => write!(f, "features must be ≥ 1"),
            InvalidParamsError::TooFewClasses { classes } => {
                write!(f, "classes must be ≥ 2 (got {classes})")
            }
            InvalidParamsError::InvalidClauseCount { clauses_per_class } => write!(
                f,
                "clauses_per_class must be even and ≥ 2 (polarity pairs), got {clauses_per_class}"
            ),
            InvalidParamsError::ZeroThreshold => write!(f, "threshold must be ≥ 1"),
            InvalidParamsError::SpecificityTooLow { specificity } => {
                write!(f, "specificity must be > 1.0 (got {specificity})")
            }
            InvalidParamsError::TooFewStates { states_per_action } => {
                write!(f, "states_per_action must be ≥ 2 (got {states_per_action})")
            }
        }
    }
}

impl std::error::Error for InvalidParamsError {}

/// Validated hyperparameter set for a [`MultiClassTm`].
///
/// The paper stresses that the TM design space is small — clauses per class,
/// the vote threshold `T` and the specificity `s` are the only values a
/// MATADOR user tunes (Table II fixes them per dataset).
///
/// [`MultiClassTm`]: crate::tm::MultiClassTm
///
/// # Examples
///
/// ```
/// use tsetlin::params::TmParams;
///
/// let params = TmParams::builder(784, 10)
///     .clauses_per_class(200)
///     .threshold(15)
///     .specificity(10.0)
///     .build()?;
/// assert_eq!(params.num_literals(), 1568);
/// # Ok::<(), tsetlin::params::InvalidParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TmParams {
    features: usize,
    classes: usize,
    clauses_per_class: usize,
    threshold: u32,
    specificity: f64,
    states_per_action: u16,
    boost_true_positive: bool,
}

impl TmParams {
    /// Starts a builder for a machine over `features` boolean inputs and
    /// `classes` output classes.
    pub fn builder(features: usize, classes: usize) -> TmParamsBuilder {
        TmParamsBuilder {
            features,
            classes,
            clauses_per_class: 100,
            threshold: 15,
            specificity: 10.0,
            states_per_action: 128,
            boost_true_positive: true,
        }
    }

    /// Number of boolean input features `n`.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Clauses allocated to each class (even; alternating ± polarity).
    pub fn clauses_per_class(&self) -> usize {
        self.clauses_per_class
    }

    /// Vote-margin target `T`.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Specificity `s` (> 1.0) controlling include pressure.
    pub fn specificity(&self) -> f64 {
        self.specificity
    }

    /// States on each side of every automaton's decision boundary.
    pub fn states_per_action(&self) -> u16 {
        self.states_per_action
    }

    /// Whether Type Ia feedback rewards true-positive literals with
    /// probability 1 instead of `(s-1)/s`.
    pub fn boost_true_positive(&self) -> bool {
        self.boost_true_positive
    }

    /// Total literal count `2n` (each feature contributes `x` and `¬x`).
    pub fn num_literals(&self) -> usize {
        2 * self.features
    }

    /// Total clauses across all classes.
    pub fn total_clauses(&self) -> usize {
        self.classes * self.clauses_per_class
    }
}

/// Builder for [`TmParams`]; see [`TmParams::builder`].
#[derive(Debug, Clone)]
pub struct TmParamsBuilder {
    features: usize,
    classes: usize,
    clauses_per_class: usize,
    threshold: u32,
    specificity: f64,
    states_per_action: u16,
    boost_true_positive: bool,
}

impl TmParamsBuilder {
    /// Sets the clause budget per class (must be even and ≥ 2).
    pub fn clauses_per_class(mut self, clauses: usize) -> Self {
        self.clauses_per_class = clauses;
        self
    }

    /// Sets the vote-margin target `T` (≥ 1).
    pub fn threshold(mut self, t: u32) -> Self {
        self.threshold = t;
        self
    }

    /// Sets the specificity `s` (> 1.0).
    pub fn specificity(mut self, s: f64) -> Self {
        self.specificity = s;
        self
    }

    /// Sets the per-side automaton state count (default 128).
    pub fn states_per_action(mut self, n: u16) -> Self {
        self.states_per_action = n;
        self
    }

    /// Enables or disables boosted true-positive feedback (default on).
    pub fn boost_true_positive(mut self, boost: bool) -> Self {
        self.boost_true_positive = boost;
        self
    }

    /// Validates and produces the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] when any constraint is violated:
    /// `features ≥ 1`, `classes ≥ 2`, even `clauses_per_class ≥ 2`,
    /// `threshold ≥ 1`, `specificity > 1.0`, `states_per_action ≥ 2`.
    pub fn build(self) -> Result<TmParams, InvalidParamsError> {
        if self.features == 0 {
            return Err(InvalidParamsError::ZeroFeatures);
        }
        if self.classes < 2 {
            return Err(InvalidParamsError::TooFewClasses {
                classes: self.classes,
            });
        }
        if self.clauses_per_class < 2 || !self.clauses_per_class.is_multiple_of(2) {
            return Err(InvalidParamsError::InvalidClauseCount {
                clauses_per_class: self.clauses_per_class,
            });
        }
        if self.threshold == 0 {
            return Err(InvalidParamsError::ZeroThreshold);
        }
        if self.specificity <= 1.0 || self.specificity.is_nan() {
            return Err(InvalidParamsError::SpecificityTooLow {
                specificity: self.specificity,
            });
        }
        if self.states_per_action < 2 {
            return Err(InvalidParamsError::TooFewStates {
                states_per_action: self.states_per_action,
            });
        }
        Ok(TmParams {
            features: self.features,
            classes: self.classes,
            clauses_per_class: self.clauses_per_class,
            threshold: self.threshold,
            specificity: self.specificity,
            states_per_action: self.states_per_action,
            boost_true_positive: self.boost_true_positive,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_params() {
        let p = TmParams::builder(784, 10)
            .clauses_per_class(200)
            .threshold(20)
            .specificity(9.0)
            .build()
            .expect("valid");
        assert_eq!(p.features(), 784);
        assert_eq!(p.total_clauses(), 2000);
        assert_eq!(p.num_literals(), 1568);
    }

    #[test]
    fn rejects_odd_clause_count() {
        let err = TmParams::builder(10, 2).clauses_per_class(5).build();
        assert!(err.is_err());
    }

    #[test]
    fn rejects_zero_features() {
        assert!(TmParams::builder(0, 2).build().is_err());
    }

    #[test]
    fn rejects_single_class() {
        assert!(TmParams::builder(4, 1).build().is_err());
    }

    #[test]
    fn rejects_unit_specificity() {
        assert!(TmParams::builder(4, 2).specificity(1.0).build().is_err());
    }

    #[test]
    fn rejects_zero_threshold() {
        assert!(TmParams::builder(4, 2).threshold(0).build().is_err());
    }

    #[test]
    fn errors_are_matchable_variants() {
        assert_eq!(
            TmParams::builder(10, 2)
                .clauses_per_class(5)
                .build()
                .unwrap_err(),
            InvalidParamsError::InvalidClauseCount {
                clauses_per_class: 5
            }
        );
        assert_eq!(
            TmParams::builder(0, 2).build().unwrap_err(),
            InvalidParamsError::ZeroFeatures
        );
        assert_eq!(
            TmParams::builder(4, 2)
                .specificity(0.5)
                .build()
                .unwrap_err(),
            InvalidParamsError::SpecificityTooLow { specificity: 0.5 }
        );
    }

    #[test]
    fn error_display_is_lowercase_prose() {
        let err = TmParams::builder(0, 2).build().unwrap_err();
        let msg = err.to_string();
        assert!(msg.starts_with("invalid tsetlin machine parameters"));
    }
}
