//! The Tsetlin Automaton — the two-action learning element of the machine.
//!
//! Each literal of each clause is guarded by one automaton with `2n` states:
//! states `1..=n` select the **exclude** action, states `n+1..=2n` select
//! **include** (Fig 1(b) of the paper). Rewards push the automaton deeper
//! into its current action; penalties push it toward the opposite action.

/// Action selected by a [`TsetlinAutomaton`]: whether the guarded literal
/// participates in its clause's AND expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Action {
    /// The literal is left out of the clause (boolean action 0).
    Exclude,
    /// The literal is ANDed into the clause (boolean action 1).
    Include,
}

impl Action {
    /// The boolean encoding used by the model translation (Fig 2):
    /// `Include` → 1, `Exclude` → 0.
    pub fn as_bit(self) -> bool {
        matches!(self, Action::Include)
    }
}

/// A two-action Tsetlin Automaton with `2 * states_per_action` states.
///
/// The state is stored as a `u16` in `1..=2n`; `n` is
/// [`TsetlinAutomaton::states_per_action`]. New automata start on the
/// exclude side of the decision boundary (state `n`), the standard TM
/// initialization that biases freshly initialized clauses toward sparsity.
///
/// # Examples
///
/// ```
/// use tsetlin::automaton::{Action, TsetlinAutomaton};
///
/// let mut ta = TsetlinAutomaton::new(128);
/// assert_eq!(ta.action(), Action::Exclude);
/// ta.penalize(); // pushed across the boundary toward include
/// assert_eq!(ta.action(), Action::Include);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct TsetlinAutomaton {
    state: u16,
    states_per_action: u16,
}

impl TsetlinAutomaton {
    /// Creates an automaton with `states_per_action` states on each side,
    /// initialized to the boundary exclude state `n`.
    ///
    /// # Panics
    ///
    /// Panics if `states_per_action` is zero or would overflow `u16`
    /// (must be `<= 32767`).
    pub fn new(states_per_action: u16) -> Self {
        assert!(states_per_action > 0, "states_per_action must be positive");
        assert!(
            states_per_action <= i16::MAX as u16,
            "states_per_action must fit in u16 when doubled"
        );
        TsetlinAutomaton {
            state: states_per_action,
            states_per_action,
        }
    }

    /// Creates an automaton at an explicit state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is outside `1..=2*states_per_action`.
    pub fn with_state(states_per_action: u16, state: u16) -> Self {
        assert!(
            (1..=2 * states_per_action).contains(&state),
            "state {state} outside 1..={}",
            2 * states_per_action
        );
        TsetlinAutomaton {
            state,
            states_per_action,
        }
    }

    /// Current raw state in `1..=2n`.
    pub fn state(&self) -> u16 {
        self.state
    }

    /// Number of states on each side of the decision boundary.
    pub fn states_per_action(&self) -> u16 {
        self.states_per_action
    }

    /// The currently selected action.
    pub fn action(&self) -> Action {
        if self.state > self.states_per_action {
            Action::Include
        } else {
            Action::Exclude
        }
    }

    /// Confidence depth: how many states the automaton sits away from the
    /// decision boundary (1 = just across it).
    pub fn depth(&self) -> u16 {
        if self.state > self.states_per_action {
            self.state - self.states_per_action
        } else {
            self.states_per_action - self.state + 1
        }
    }

    /// Reward: reinforce the current action by moving away from the
    /// boundary, saturating at the extreme states.
    pub fn reward(&mut self) {
        match self.action() {
            Action::Include => {
                if self.state < 2 * self.states_per_action {
                    self.state += 1;
                }
            }
            Action::Exclude => {
                if self.state > 1 {
                    self.state -= 1;
                }
            }
        }
    }

    /// Penalty: weaken the current action by moving toward (and possibly
    /// across) the boundary.
    pub fn penalize(&mut self) {
        match self.action() {
            Action::Include => self.state -= 1,
            Action::Exclude => self.state += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_excluded_at_boundary() {
        let ta = TsetlinAutomaton::new(100);
        assert_eq!(ta.action(), Action::Exclude);
        assert_eq!(ta.state(), 100);
        assert_eq!(ta.depth(), 1);
    }

    #[test]
    fn penalty_crosses_boundary() {
        let mut ta = TsetlinAutomaton::new(4);
        ta.penalize();
        assert_eq!(ta.action(), Action::Include);
        assert_eq!(ta.state(), 5);
        ta.penalize();
        assert_eq!(ta.action(), Action::Exclude);
    }

    #[test]
    fn reward_saturates_at_extremes() {
        let mut ta = TsetlinAutomaton::with_state(3, 1);
        ta.reward();
        assert_eq!(ta.state(), 1);
        let mut ta = TsetlinAutomaton::with_state(3, 6);
        ta.reward();
        assert_eq!(ta.state(), 6);
    }

    #[test]
    fn reward_deepens_current_action() {
        let mut ta = TsetlinAutomaton::with_state(10, 15); // include side
        ta.reward();
        assert_eq!(ta.state(), 16);
        let mut ta = TsetlinAutomaton::with_state(10, 5); // exclude side
        ta.reward();
        assert_eq!(ta.state(), 4);
    }

    #[test]
    fn depth_is_distance_from_boundary() {
        assert_eq!(TsetlinAutomaton::with_state(10, 10).depth(), 1);
        assert_eq!(TsetlinAutomaton::with_state(10, 11).depth(), 1);
        assert_eq!(TsetlinAutomaton::with_state(10, 1).depth(), 10);
        assert_eq!(TsetlinAutomaton::with_state(10, 20).depth(), 10);
    }

    #[test]
    fn action_bit_encoding() {
        assert!(Action::Include.as_bit());
        assert!(!Action::Exclude.as_bit());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn with_state_validates_range() {
        TsetlinAutomaton::with_state(4, 9);
    }
}
