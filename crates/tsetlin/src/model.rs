//! The trained TM model: the frozen include/exclude boolean sequence that
//! MATADOR translates into a combinational circuit.

use crate::bits::BitVec;
use crate::clause::Clause;
use crate::params::TmParams;
use crate::tm::{argmax, Polarity};
use crate::Sample;

/// The include decisions of one clause, packed per feature.
///
/// `pos` bit `k` set ⇒ literal `x_k` is ANDed into the clause;
/// `neg` bit `k` set ⇒ literal `¬x_k` is ANDed in.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct IncludeMask {
    /// Included positive literals (one bit per feature).
    pub pos: BitVec,
    /// Included negated literals (one bit per feature).
    pub neg: BitVec,
}

impl IncludeMask {
    /// An empty mask over `features` inputs (constant-1 clause).
    pub fn empty(features: usize) -> Self {
        IncludeMask {
            pos: BitVec::zeros(features),
            neg: BitVec::zeros(features),
        }
    }

    /// Number of included literals.
    pub fn num_includes(&self) -> usize {
        self.pos.count_ones() + self.neg.count_ones()
    }

    /// Evaluates the clause on input `x` / complement `x_neg`.
    pub fn evaluate(&self, x: &BitVec, x_neg: &BitVec) -> bool {
        self.pos.covered_by(x) && self.neg.covered_by(x_neg)
    }

    /// Restricts the mask to the feature window `[start, start+width)`,
    /// re-indexed from zero — the partial clause owned by one HCB.
    pub fn window(&self, start: usize, width: usize) -> IncludeMask {
        IncludeMask {
            pos: self.pos.slice(start, width),
            neg: self.neg.slice(start, width),
        }
    }
}

/// A frozen multiclass TM model: per class, per clause, an [`IncludeMask`].
///
/// This is the exact artifact the MATADOR flow consumes — training detail
/// (automaton states) is gone; only the boolean actions remain (Fig 2).
///
/// # Examples
///
/// ```
/// use tsetlin::{MultiClassTm, TmParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = TmParams::builder(16, 2).clauses_per_class(4).build()?;
/// let tm = MultiClassTm::new(params);
/// let model = tm.to_model();
/// assert_eq!(model.num_classes(), 2);
/// assert_eq!(model.clauses_per_class(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainedModel {
    features: usize,
    classes: usize,
    clauses_per_class: usize,
    /// Row-major `[class][clause]`, flattened.
    includes: Vec<IncludeMask>,
}

impl TrainedModel {
    /// Builds a model directly from include masks.
    ///
    /// # Panics
    ///
    /// Panics if `includes.len() != classes * clauses_per_class` or any
    /// mask width differs from `features`.
    pub fn from_masks(
        features: usize,
        classes: usize,
        clauses_per_class: usize,
        includes: Vec<IncludeMask>,
    ) -> Self {
        assert_eq!(
            includes.len(),
            classes * clauses_per_class,
            "mask count mismatch"
        );
        for m in &includes {
            assert_eq!(m.pos.len(), features, "mask width mismatch");
            assert_eq!(m.neg.len(), features, "mask width mismatch");
        }
        TrainedModel {
            features,
            classes,
            clauses_per_class,
            includes,
        }
    }

    pub(crate) fn from_clauses(params: &TmParams, clauses: &[Vec<Clause>]) -> Self {
        let includes = clauses
            .iter()
            .flat_map(|class| {
                class.iter().map(|c| IncludeMask {
                    pos: c.include_pos().clone(),
                    neg: c.include_neg().clone(),
                })
            })
            .collect();
        TrainedModel {
            features: params.features(),
            classes: params.classes(),
            clauses_per_class: params.clauses_per_class(),
            includes,
        }
    }

    /// Number of boolean input features.
    pub fn num_features(&self) -> usize {
        self.features
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Clauses per class.
    pub fn clauses_per_class(&self) -> usize {
        self.clauses_per_class
    }

    /// Total clause count.
    pub fn total_clauses(&self) -> usize {
        self.includes.len()
    }

    /// The include mask of clause `j` of `class`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn clause(&self, class: usize, j: usize) -> &IncludeMask {
        assert!(class < self.classes, "class out of range");
        assert!(j < self.clauses_per_class, "clause out of range");
        &self.includes[class * self.clauses_per_class + j]
    }

    /// Iterates `(class, clause_index, mask)` in row-major order.
    pub fn iter_clauses(&self) -> impl Iterator<Item = (usize, usize, &IncludeMask)> + '_ {
        self.includes
            .iter()
            .enumerate()
            .map(move |(i, m)| (i / self.clauses_per_class, i % self.clauses_per_class, m))
    }

    /// Class sums on input `x` (empty clauses count as firing, matching the
    /// hardware's `1'b1` partial-clause initialization).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_features()`.
    pub fn class_sums(&self, x: &BitVec) -> Vec<i32> {
        assert_eq!(x.len(), self.features, "input width mismatch");
        let x_neg = x.not();
        (0..self.classes)
            .map(|class| {
                (0..self.clauses_per_class)
                    .map(|j| {
                        if self.clause(class, j).evaluate(x, &x_neg) {
                            Polarity::of_index(j).vote()
                        } else {
                            0
                        }
                    })
                    .sum()
            })
            .collect()
    }

    /// Predicted class for `x` (lowest index wins ties).
    pub fn predict(&self, x: &BitVec) -> usize {
        argmax(&self.class_sums(x))
    }

    /// Fraction of `samples` classified correctly.
    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|s| self.predict(&s.input) == s.label)
            .count();
        correct as f64 / samples.len() as f64
    }

    /// Total include count across all clauses.
    pub fn total_includes(&self) -> usize {
        self.includes.iter().map(IncludeMask::num_includes).sum()
    }

    /// Fraction of literal slots that are includes — the sparsity the paper
    /// reports as "extremely high" (Section II).
    pub fn include_density(&self) -> f64 {
        let slots = self.total_clauses() * 2 * self.features;
        if slots == 0 {
            return 0.0;
        }
        self.total_includes() as f64 / slots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clause_model() -> TrainedModel {
        // class 0: clause0 (+) = x0 & ¬x2 ; clause1 (−) = x3
        // class 1: clause0 (+) = x2       ; clause1 (−) = empty
        let f = 4;
        let mk = |pos: &[usize], neg: &[usize]| IncludeMask {
            pos: BitVec::from_indices(f, pos),
            neg: BitVec::from_indices(f, neg),
        };
        TrainedModel::from_masks(
            f,
            2,
            2,
            vec![mk(&[0], &[2]), mk(&[3], &[]), mk(&[2], &[]), mk(&[], &[])],
        )
    }

    #[test]
    fn class_sums_respect_polarity_and_empty_clause() {
        let m = two_clause_model();
        let x = BitVec::from_indices(4, &[0]);
        // class 0: clause0 fires (+1); clause1 silent. → +1
        // class 1: clause0 silent; empty clause1 fires (−1). → −1
        assert_eq!(m.class_sums(&x), vec![1, -1]);
        assert_eq!(m.predict(&x), 0);
    }

    #[test]
    fn window_restriction_reindexes() {
        let m = two_clause_model();
        let w = m.clause(0, 0).window(2, 2);
        assert_eq!(w.pos.count_ones(), 0);
        assert!(w.neg.get(0)); // ¬x2 → window bit 0
    }

    #[test]
    fn include_statistics() {
        let m = two_clause_model();
        assert_eq!(m.total_includes(), 4);
        let density = m.include_density();
        assert!((density - 4.0 / (4.0 * 8.0)).abs() < 1e-12);
    }

    #[test]
    fn iter_clauses_row_major() {
        let m = two_clause_model();
        let order: Vec<(usize, usize)> = m.iter_clauses().map(|(c, j, _)| (c, j)).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "mask count mismatch")]
    fn from_masks_validates_count() {
        TrainedModel::from_masks(4, 2, 2, vec![IncludeMask::empty(4)]);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn class_sums_validates_width() {
        two_clause_model().class_sums(&BitVec::zeros(5));
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let m = two_clause_model();
        let samples = vec![
            Sample::new(BitVec::from_indices(4, &[0]), 0),
            Sample::new(BitVec::from_indices(4, &[2]), 1),
            Sample::new(BitVec::from_indices(4, &[2]), 0), // wrong on purpose
        ];
        let acc = m.accuracy(&samples);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }
}
