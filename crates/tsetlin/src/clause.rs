//! A single clause: a team of Tsetlin Automata plus the propositional AND
//! over the literals they include (Fig 1(b) / Fig 2 of the paper).

use crate::automaton::{Action, TsetlinAutomaton};
use crate::bits::BitVec;
use rand::Rng;

/// One conjunctive clause over `2n` literals.
///
/// Literal `k` for `k < n` is feature `x_k`; literal `n + k` is `¬x_k`.
/// The clause keeps its automaton states *and* a pair of packed include
/// masks (`pos`/`neg`, one bit per feature) that are updated incrementally
/// whenever an automaton crosses its decision boundary, so evaluation is a
/// couple of word-wise subset tests instead of a walk over all automata.
///
/// An empty clause (no includes) evaluates to 1 — the AND identity. This
/// matches the generated hardware, where HCB 0 initializes every partial
/// clause register to `1'b1` (Fig 5), and keeps software inference
/// bit-identical to the gate-level design.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Clause {
    num_features: usize,
    ta: Vec<TsetlinAutomaton>,
    include_pos: BitVec,
    include_neg: BitVec,
}

impl Clause {
    /// Creates a clause over `num_features` features with all automata at
    /// the boundary exclude state.
    ///
    /// # Panics
    ///
    /// Panics if `num_features` is zero (via automaton validation upstream).
    pub fn new(num_features: usize, states_per_action: u16) -> Self {
        Clause {
            num_features,
            ta: vec![TsetlinAutomaton::new(states_per_action); 2 * num_features],
            include_pos: BitVec::zeros(num_features),
            include_neg: BitVec::zeros(num_features),
        }
    }

    /// Number of input features `n`.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Included positive literals, one bit per feature.
    pub fn include_pos(&self) -> &BitVec {
        &self.include_pos
    }

    /// Included negated literals, one bit per feature.
    pub fn include_neg(&self) -> &BitVec {
        &self.include_neg
    }

    /// Automaton guarding literal `k` (`k < n`: `x_k`; else `¬x_{k-n}`).
    ///
    /// # Panics
    ///
    /// Panics if `k >= 2n`.
    pub fn automaton(&self, k: usize) -> TsetlinAutomaton {
        self.ta[k]
    }

    /// Total number of included literals.
    pub fn num_includes(&self) -> usize {
        self.include_pos.count_ones() + self.include_neg.count_ones()
    }

    /// Whether the clause includes no literals (constant-1 clause).
    pub fn is_empty_clause(&self) -> bool {
        self.num_includes() == 0
    }

    /// Evaluates the clause on an input.
    ///
    /// `x` is the packed feature vector and `x_neg` its precomputed
    /// complement (callers evaluating many clauses share one complement).
    ///
    /// # Panics
    ///
    /// Panics if `x` / `x_neg` lengths differ from `num_features`.
    pub fn evaluate(&self, x: &BitVec, x_neg: &BitVec) -> bool {
        self.include_pos.covered_by(x) && self.include_neg.covered_by(x_neg)
    }

    /// Type I feedback: reinforces the clause toward matching `x`
    /// (combats false negatives). `clause_output` must be the value of
    /// [`Clause::evaluate`] on the same input.
    ///
    /// With output 1, literals that are 1 are nudged toward include with
    /// probability `(s-1)/s` (or 1 under `boost_true_positive`) and literals
    /// that are 0 toward exclude with probability `1/s`. With output 0,
    /// every literal is nudged toward exclude with probability `1/s`.
    pub fn type_i_feedback<R: Rng + ?Sized>(
        &mut self,
        x: &BitVec,
        clause_output: bool,
        specificity: f64,
        boost_true_positive: bool,
        rng: &mut R,
    ) {
        let n = self.num_features;
        let p_low = 1.0 / specificity;
        if clause_output {
            let p_high = 1.0 - p_low;
            // Literal value 1 → push toward include.
            if boost_true_positive {
                for k in x.iter_ones() {
                    self.nudge_include(k);
                }
                for k in 0..n {
                    if !x.get(k) {
                        self.nudge_include(n + k);
                    }
                }
            } else {
                for k in x.iter_ones() {
                    if rng.gen::<f64>() < p_high {
                        self.nudge_include(k);
                    }
                }
                for k in 0..n {
                    if !x.get(k) && rng.gen::<f64>() < p_high {
                        self.nudge_include(n + k);
                    }
                }
            }
            // Literal value 0 → push toward exclude with probability 1/s.
            for_each_bernoulli(rng, 2 * n, p_low, |k| {
                let value = if k < n { x.get(k) } else { !x.get(k - n) };
                if !value {
                    self.nudge_exclude(k);
                }
            });
        } else {
            // Clause silent: erode all includes with probability 1/s.
            for_each_bernoulli(rng, 2 * n, p_low, |k| self.nudge_exclude(k));
        }
    }

    /// Type II feedback: blocks a false positive by including (with
    /// probability 1) zero-valued literals that are currently excluded,
    /// which forces the clause toward 0 on this input.
    pub fn type_ii_feedback(&mut self, x: &BitVec, clause_output: bool) {
        if !clause_output {
            return;
        }
        let n = self.num_features;
        for k in 0..n {
            if !x.get(k) && self.ta[k].action() == Action::Exclude {
                self.nudge_include(k);
            }
            if x.get(k) && self.ta[n + k].action() == Action::Exclude {
                self.nudge_include(n + k);
            }
        }
    }

    /// Rebuilds the packed include masks from the automaton states.
    /// Exposed for tests; the masks are otherwise maintained incrementally.
    pub fn rebuild_masks(&mut self) {
        let n = self.num_features;
        for k in 0..n {
            self.include_pos
                .set(k, self.ta[k].action() == Action::Include);
            self.include_neg
                .set(k, self.ta[n + k].action() == Action::Include);
        }
    }

    fn nudge_include(&mut self, k: usize) {
        let before = self.ta[k].action();
        match before {
            Action::Include => self.ta[k].reward(),
            Action::Exclude => self.ta[k].penalize(),
        }
        if before == Action::Exclude && self.ta[k].action() == Action::Include {
            self.set_mask(k, true);
        }
    }

    fn nudge_exclude(&mut self, k: usize) {
        let before = self.ta[k].action();
        match before {
            Action::Exclude => self.ta[k].reward(),
            Action::Include => self.ta[k].penalize(),
        }
        if before == Action::Include && self.ta[k].action() == Action::Exclude {
            self.set_mask(k, false);
        }
    }

    fn set_mask(&mut self, k: usize, value: bool) {
        if k < self.num_features {
            self.include_pos.set(k, value);
        } else {
            self.include_neg.set(k - self.num_features, value);
        }
    }
}

/// Visits each index in `0..m` independently with probability `p`, using
/// geometric gap sampling so the expected RNG cost is `O(m·p)` rather than
/// `O(m)` — the dominant cost of Type I feedback at TM scale.
fn for_each_bernoulli<R: Rng + ?Sized>(
    rng: &mut R,
    m: usize,
    p: f64,
    mut visit: impl FnMut(usize),
) {
    if p <= 0.0 || m == 0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..m {
            visit(i);
        }
        return;
    }
    let ln_q = (1.0 - p).ln();
    let mut i = 0usize;
    loop {
        let u: f64 = rng.gen();
        // Geometric(p) gap; `as usize` saturates on the u→0 infinity case.
        let gap = (u.ln() / ln_q) as usize;
        i = i.saturating_add(gap);
        if i >= m {
            return;
        }
        visit(i);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn input(bits: &[usize], n: usize) -> (BitVec, BitVec) {
        let x = BitVec::from_indices(n, bits);
        let neg = x.not();
        (x, neg)
    }

    #[test]
    fn fresh_clause_is_empty_and_outputs_one() {
        let c = Clause::new(16, 64);
        let (x, xn) = input(&[3, 5], 16);
        assert!(c.is_empty_clause());
        assert!(c.evaluate(&x, &xn));
    }

    #[test]
    fn type_ii_includes_blocking_literals() {
        let mut c = Clause::new(8, 64);
        let (x, xn) = input(&[0, 1], 8);
        assert!(c.evaluate(&x, &xn));
        c.type_ii_feedback(&x, true);
        // Features 2..8 are 0 → positive literals included; features 0,1 are
        // 1 → negated literals included. Clause now rejects x.
        assert!(!c.evaluate(&x, &xn));
        for k in 2..8 {
            assert!(c.include_pos().get(k), "pos literal {k}");
        }
        assert!(c.include_neg().get(0) && c.include_neg().get(1));
    }

    #[test]
    fn type_ii_noop_when_clause_silent() {
        let mut c = Clause::new(8, 64);
        let (x, _) = input(&[0], 8);
        c.type_ii_feedback(&x, false);
        assert!(c.is_empty_clause());
    }

    #[test]
    fn type_i_on_firing_clause_learns_pattern() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut c = Clause::new(8, 8);
        let (x, xn) = input(&[1, 4], 8);
        // Repeated Type I with the clause firing drives includes toward the
        // true literals of x: x1, x4, and the negations of the rest.
        for _ in 0..64 {
            let out = c.evaluate(&x, &xn);
            c.type_i_feedback(&x, out, 4.0, true, &mut rng);
        }
        assert!(c.include_pos().get(1));
        assert!(c.include_pos().get(4));
        assert!(c.evaluate(&x, &xn));
        // A conflicting input must now be rejected.
        let (y, yn) = input(&[2], 8);
        assert!(!c.evaluate(&y, &yn));
    }

    #[test]
    fn type_i_on_silent_clause_erodes_includes() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut c = Clause::new(8, 4);
        let (x, xn) = input(&[0], 8);
        for _ in 0..32 {
            let out = c.evaluate(&x, &xn);
            c.type_i_feedback(&x, out, 4.0, true, &mut rng);
        }
        assert!(!c.is_empty_clause());
        // Now feed Type I with output forced to 0 (as happens when another
        // input keeps the clause silent): includes must decay.
        let (z, _zn) = input(&[7], 8);
        for _ in 0..256 {
            c.type_i_feedback(&z, false, 2.0, true, &mut rng);
        }
        assert!(c.is_empty_clause());
    }

    #[test]
    fn masks_match_automata_after_training_noise() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut c = Clause::new(12, 6);
        for step in 0..200 {
            let (x, xn) = input(&[step % 12, (step * 5) % 12], 12);
            let out = c.evaluate(&x, &xn);
            if step % 3 == 0 {
                c.type_ii_feedback(&x, out);
            } else {
                c.type_i_feedback(&x, out, 3.0, step % 2 == 0, &mut rng);
            }
        }
        let mut rebuilt = c.clone();
        rebuilt.rebuild_masks();
        assert_eq!(c.include_pos(), rebuilt.include_pos());
        assert_eq!(c.include_neg(), rebuilt.include_neg());
    }

    #[test]
    fn bernoulli_visitor_hits_expected_fraction() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut hits = 0usize;
        let trials = 2000;
        for _ in 0..trials {
            for_each_bernoulli(&mut rng, 100, 0.1, |_| hits += 1);
        }
        let mean = hits as f64 / trials as f64;
        assert!((mean - 10.0).abs() < 1.0, "mean {mean} not near 10");
    }

    #[test]
    fn bernoulli_visitor_edge_probabilities() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut count = 0;
        for_each_bernoulli(&mut rng, 50, 0.0, |_| count += 1);
        assert_eq!(count, 0);
        for_each_bernoulli(&mut rng, 50, 1.0, |_| count += 1);
        assert_eq!(count, 50);
    }
}
