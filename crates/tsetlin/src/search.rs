//! Clause-budget design-space sweep.
//!
//! MATADOR's GUI walks the user through a small design-space exploration:
//! the dominant knob is clauses-per-class, which trades accuracy against
//! logic footprint (the paper cites MILEAGE \[17\] for automated clause
//! search). This module provides the programmatic sweep behind that step.

use crate::params::{InvalidParamsError, TmParams};
use crate::sparsity::sparsity_report;
use crate::tm::MultiClassTm;
use crate::Sample;
use rand::Rng;

/// One point of a clause sweep.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepPoint {
    /// Clauses per class used at this point.
    pub clauses_per_class: usize,
    /// Training-set accuracy after `epochs`.
    pub train_accuracy: f64,
    /// Held-out accuracy after `epochs`.
    pub test_accuracy: f64,
    /// Total includes of the trained model (proxy for logic cost).
    pub includes: usize,
    /// Include density of the trained model.
    pub density: f64,
}

/// Trains one machine per clause budget and reports accuracy/footprint.
///
/// The same `base` hyperparameters (threshold, specificity, …) are reused
/// at every point; only `clauses_per_class` varies.
///
/// # Errors
///
/// Returns [`InvalidParamsError`] if a budget in `budgets` is invalid
/// (odd or < 2).
pub fn sweep_clause_budgets<R: Rng + ?Sized>(
    base: &TmParams,
    budgets: &[usize],
    train: &[Sample],
    test: &[Sample],
    epochs: usize,
    rng: &mut R,
) -> Result<Vec<SweepPoint>, InvalidParamsError> {
    let mut out = Vec::with_capacity(budgets.len());
    for &budget in budgets {
        let params = TmParams::builder(base.features(), base.classes())
            .clauses_per_class(budget)
            .threshold(base.threshold())
            .specificity(base.specificity())
            .states_per_action(base.states_per_action())
            .boost_true_positive(base.boost_true_positive())
            .build()?;
        let mut tm = MultiClassTm::new(params);
        tm.fit(train, epochs, rng);
        let model = tm.to_model();
        let sparsity = sparsity_report(&model);
        out.push(SweepPoint {
            clauses_per_class: budget,
            train_accuracy: tm.accuracy(train),
            test_accuracy: tm.accuracy(test),
            includes: sparsity.includes,
            density: sparsity.density,
        });
    }
    Ok(out)
}

/// Picks the sweep point with the best test accuracy, breaking ties toward
/// the smaller clause budget (the resource-frugal choice).
pub fn best_point(points: &[SweepPoint]) -> Option<&SweepPoint> {
    points.iter().min_by(|a, b| {
        b.test_accuracy
            .partial_cmp(&a.test_accuracy)
            .expect("accuracies are finite")
            .then(a.clauses_per_class.cmp(&b.clauses_per_class))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitVec;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_task() -> (Vec<Sample>, Vec<Sample>) {
        let mut data = Vec::new();
        for i in 0..24 {
            let class = i % 2;
            let bits = if class == 0 { [0usize, 1] } else { [4, 5] };
            data.push(Sample::new(BitVec::from_indices(8, &bits), class));
        }
        let test = data.split_off(16);
        (data, test)
    }

    #[test]
    fn sweep_produces_one_point_per_budget() {
        let (train, test) = tiny_task();
        let base = TmParams::builder(8, 2)
            .threshold(4)
            .specificity(4.0)
            .states_per_action(16)
            .build()
            .expect("valid");
        let mut rng = SmallRng::seed_from_u64(2);
        let points =
            sweep_clause_budgets(&base, &[4, 8], &train, &test, 15, &mut rng).expect("sweep");
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].clauses_per_class, 4);
        assert!(points.iter().all(|p| p.test_accuracy >= 0.5));
    }

    #[test]
    fn sweep_rejects_odd_budget() {
        let (train, test) = tiny_task();
        let base = TmParams::builder(8, 2).build().expect("valid");
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(sweep_clause_budgets(&base, &[3], &train, &test, 1, &mut rng).is_err());
    }

    #[test]
    fn best_point_prefers_accuracy_then_small_budget() {
        let mk = |c, acc| SweepPoint {
            clauses_per_class: c,
            train_accuracy: acc,
            test_accuracy: acc,
            includes: 0,
            density: 0.0,
        };
        let pts = vec![mk(8, 0.9), mk(4, 0.9), mk(16, 0.8)];
        let best = best_point(&pts).expect("non-empty");
        assert_eq!(best.clauses_per_class, 4);
        assert!(best_point(&[]).is_none());
    }
}
