//! # tsetlin — the Tsetlin Machine learning substrate
//!
//! A from-scratch implementation of the multiclass Tsetlin Machine
//! (Granmo, 2018) as used by the MATADOR toolflow: two-action Tsetlin
//! Automata, conjunctive clauses over positive/negated literals, polarity
//! voting, and the Type I / Type II stochastic feedback schedule.
//!
//! The crate's central artifact is the [`TrainedModel`]: the frozen
//! include/exclude boolean sequence that MATADOR lowers to a combinational
//! circuit. Everything the hardware flow needs — packed include masks,
//! per-window restrictions, sparsity/overlap analytics and a text
//! interchange format for externally trained models — lives here.
//!
//! ## Quick start
//!
//! ```
//! use tsetlin::{MultiClassTm, Sample, TmParams};
//! use tsetlin::bits::BitVec;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Learn a 2-class pattern over 8 boolean features.
//! let params = TmParams::builder(8, 2)
//!     .clauses_per_class(10)
//!     .threshold(5)
//!     .specificity(4.0)
//!     .build()?;
//! let mut tm = MultiClassTm::new(params);
//! let data = vec![
//!     Sample::new(BitVec::from_indices(8, &[0, 1]), 0),
//!     Sample::new(BitVec::from_indices(8, &[6, 7]), 1),
//! ];
//! let mut rng = SmallRng::seed_from_u64(42);
//! tm.fit(&data, 25, &mut rng);
//! let model = tm.to_model();
//! assert_eq!(model.predict(&data[0].input), 0);
//! # Ok(())
//! # }
//! ```

pub mod automaton;
pub mod bits;
pub mod booleanize;
pub mod clause;
pub mod error;
pub mod io;
pub mod model;
pub mod params;
pub mod search;
pub mod sparsity;
pub mod tm;

pub use automaton::{Action, TsetlinAutomaton};
pub use bits::BitVec;
pub use clause::Clause;
pub use error::Error;
pub use model::{IncludeMask, TrainedModel};
pub use params::{InvalidParamsError, TmParams};
pub use tm::{argmax, MultiClassTm, Polarity};

/// A labelled boolean datapoint.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Sample {
    /// Booleanized feature vector.
    pub input: BitVec,
    /// Ground-truth class index.
    pub label: usize,
}

impl Sample {
    /// Creates a labelled sample.
    ///
    /// # Examples
    ///
    /// ```
    /// use tsetlin::{bits::BitVec, Sample};
    ///
    /// let s = Sample::new(BitVec::zeros(4), 1);
    /// assert_eq!(s.label, 1);
    /// ```
    pub fn new(input: BitVec, label: usize) -> Self {
        Sample { input, label }
    }
}
