//! Property-based tests of the tsetlin crate's foundational invariants:
//! bit-vector algebra, automaton state bounds, clause/mask consistency and
//! model voting arithmetic.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tsetlin::bits::BitVec;
use tsetlin::{Action, Clause, TsetlinAutomaton};

fn arb_bits(max_len: usize) -> impl Strategy<Value = BitVec> {
    (1..=max_len).prop_flat_map(|len| {
        proptest::collection::vec(any::<bool>(), len).prop_map(BitVec::from_bools)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitvec_double_complement_is_identity(v in arb_bits(200)) {
        prop_assert_eq!(v.not().not(), v);
    }

    #[test]
    fn bitvec_ones_count_complementary(v in arb_bits(200)) {
        prop_assert_eq!(v.count_ones() + v.not().count_ones(), v.len());
    }

    #[test]
    fn bitvec_and_is_subset_of_both(
        (a, b) in (1usize..128).prop_flat_map(|len| {
            (
                proptest::collection::vec(any::<bool>(), len).prop_map(BitVec::from_bools),
                proptest::collection::vec(any::<bool>(), len).prop_map(BitVec::from_bools),
            )
        }),
    ) {
        let both = a.and(&b);
        prop_assert!(both.covered_by(&a));
        prop_assert!(both.covered_by(&b));
        prop_assert!(a.covered_by(&a.or(&b)));
    }

    #[test]
    fn bitvec_xor_with_self_is_zero(a in arb_bits(128)) {
        prop_assert_eq!(a.xor(&a).count_ones(), 0);
    }

    #[test]
    fn bitvec_iter_ones_matches_count(v in arb_bits(256)) {
        prop_assert_eq!(v.iter_ones().count(), v.count_ones());
        for i in v.iter_ones() {
            prop_assert!(v.get(i));
        }
    }

    #[test]
    fn bitvec_extract_word_window_consistent(v in arb_bits(200), start in 0usize..220) {
        let word = v.extract_word(start, 32);
        for off in 0..32 {
            let i = start + off;
            let expect = i < v.len() && v.get(i);
            prop_assert_eq!((word >> off) & 1 == 1, expect);
        }
    }

    #[test]
    fn automaton_state_always_in_bounds(
        n in 1u16..64,
        ops in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut ta = TsetlinAutomaton::new(n);
        for reward in ops {
            if reward { ta.reward() } else { ta.penalize() }
            prop_assert!(ta.state() >= 1 && ta.state() <= 2 * n);
            // Depth is consistent with the action side.
            prop_assert!(ta.depth() >= 1 && ta.depth() <= n);
            match ta.action() {
                Action::Include => prop_assert!(ta.state() > n),
                Action::Exclude => prop_assert!(ta.state() <= n),
            }
        }
    }

    #[test]
    fn clause_masks_stay_consistent_under_feedback(
        seed in any::<u64>(),
        steps in 1usize..80,
        features in 2usize..24,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut clause = Clause::new(features, 8);
        for step in 0..steps {
            let x = BitVec::from_bools((0..features).map(|k| (seed >> ((k + step) % 64)) & 1 == 1));
            let x_neg = x.not();
            let out = clause.evaluate(&x, &x_neg);
            if step % 3 == 0 {
                clause.type_ii_feedback(&x, out);
            } else {
                clause.type_i_feedback(&x, out, 3.0, step % 2 == 0, &mut rng);
            }
        }
        // The incrementally maintained masks must equal a rebuild from the
        // automaton states — the core training invariant.
        let mut rebuilt = clause.clone();
        rebuilt.rebuild_masks();
        prop_assert_eq!(clause.include_pos(), rebuilt.include_pos());
        prop_assert_eq!(clause.include_neg(), rebuilt.include_neg());
        // And agree with per-automaton actions.
        for k in 0..features {
            prop_assert_eq!(
                clause.include_pos().get(k),
                clause.automaton(k).action() == Action::Include
            );
            prop_assert_eq!(
                clause.include_neg().get(k),
                clause.automaton(features + k).action() == Action::Include
            );
        }
    }

    #[test]
    fn empty_clause_always_fires(x in arb_bits(64)) {
        let clause = Clause::new(x.len(), 8);
        prop_assert!(clause.evaluate(&x, &x.not()));
    }

    #[test]
    fn type_ii_never_fires_clause_on_same_input(x in arb_bits(32)) {
        // After Type II feedback on input x, a previously firing clause
        // must reject x (the false-positive-blocking property).
        let mut clause = Clause::new(x.len(), 8);
        let x_neg = x.not();
        prop_assume!(x.count_ones() < x.len()); // need at least one 0 literal
        clause.type_ii_feedback(&x, true);
        prop_assert!(!clause.evaluate(&x, &x_neg));
    }
}
