//! # matador-baselines — the FINN-style BNN/QNN comparison stack
//!
//! Everything needed to stand in for the paper's baseline column: the
//! Table II network topologies ([`topology`]), quantized-MLP training with
//! the straight-through estimator ([`bnn`] — the Brevitas stand-in that
//! yields deployed accuracies), and a FINN-style streaming-dataflow
//! performance/resource model with PE×SIMD folding ([`dataflow`]). The
//! exact configurations evaluated in Table I are enumerated in
//! [`presets`].
//!
//! ```
//! use matador_baselines::presets::BaselineKind;
//!
//! let finn_mnist = BaselineKind::FinnMnist.design();
//! let t = finn_mnist.timing();
//! // Throughput is bound by the slowest layer's fold (~105 cycles).
//! assert!(t.ii_cycles <= 105);
//! assert!(finn_mnist.resources().bram > 10.0); // weights live in BRAM
//! ```

pub mod bnn;
pub mod dataflow;
pub mod presets;
pub mod topology;

pub use bnn::{QuantMlp, TrainConfig};
pub use dataflow::{DataflowDesign, DataflowTiming, Fold};
pub use presets::BaselineKind;
pub use topology::{Quantization, Topology, TopologyError};
