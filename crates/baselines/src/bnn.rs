//! Quantized MLP training — the Brevitas/Theano stand-in that produces the
//! baseline accuracy column of Table I.
//!
//! Training is BinaryNet-style: straight-through-estimator SGD on the
//! quantized network with per-neuron running batch normalization (the
//! normalization FINN folds into its threshold memories — without it every
//! neuron of a layer saturates the same way and the net collapses to a
//! constant class). An optional float pretraining phase (tanh hidden
//! units) is available via [`TrainConfig::float_fraction`]. **Reported
//! accuracy always uses the fully quantized forward pass** — the network
//! exactly as the FINN hardware would execute it — so the accuracy column
//! is deployed accuracy, not a float proxy.

use crate::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tsetlin::bits::BitVec;
use tsetlin::Sample;

/// A trainable quantized MLP.
#[derive(Debug, Clone)]
pub struct QuantMlp {
    topology: Topology,
    /// Real-valued (shadow) weights per layer, row-major `[out][in]`.
    weights: Vec<Vec<f32>>,
    /// Per-neuron bias / threshold.
    biases: Vec<Vec<f32>>,
    /// Per-neuron running mean of hidden pre-activations (batch norm).
    bn_mean: Vec<Vec<f32>>,
    /// Per-neuron running variance of hidden pre-activations (batch norm).
    bn_var: Vec<Vec<f32>>,
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainConfig {
    /// SGD learning rate for the float phase (the quantized fine-tune uses
    /// a third of it).
    pub learning_rate: f32,
    /// Total epochs, split between float pretraining and quantized
    /// fine-tuning per `float_fraction`.
    pub epochs: usize,
    /// Fraction of epochs spent in float pretraining (0.0 = pure STE).
    pub float_fraction: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.03,
            epochs: 8,
            float_fraction: 0.0,
        }
    }
}

/// Symmetric quantizer to `bits` levels in [-1, 1].
fn quantize(v: f32, bits: u8) -> f32 {
    if bits == 1 {
        return if v >= 0.0 { 1.0 } else { -1.0 };
    }
    let levels = (1u32 << bits) - 1; // e.g. 3 steps for 2 bits
    let clamped = v.clamp(-1.0, 1.0);
    let step = 2.0 / levels as f32;
    ((clamped + 1.0) / step).round() * step - 1.0
}

const BN_EPS: f32 = 1.0e-3;
const BN_MOMENTUM: f32 = 0.95;

impl QuantMlp {
    /// Initializes with small random shadow weights.
    pub fn new(topology: Topology, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x424e_4e31);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for l in 0..topology.num_weight_layers() {
            let (m, n) = topology.layer_shape(l);
            let scale = (1.0 / n as f32).sqrt();
            weights.push(
                (0..m * n)
                    .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
                    .collect(),
            );
            biases.push(vec![0.0; m]);
        }
        let bn_mean = (0..topology.num_weight_layers())
            .map(|l| vec![0.0; topology.layer_shape(l).0])
            .collect();
        let bn_var = (0..topology.num_weight_layers())
            .map(|l| vec![1.0; topology.layer_shape(l).0])
            .collect();
        QuantMlp {
            topology,
            weights,
            biases,
            bn_mean,
            bn_var,
        }
    }

    /// The topology this network implements.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Deployed forward pass: quantized weights and activations, exactly
    /// as the streamed FINN dataflow executes. Returns output scores.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the input layer width.
    pub fn forward(&self, input: &BitVec) -> Vec<f32> {
        self.forward_impl(input, true)
    }

    /// Float forward pass (tanh hidden units) used during pretraining.
    pub fn forward_float(&self, input: &BitVec) -> Vec<f32> {
        self.forward_impl(input, false)
    }

    fn forward_impl(&self, input: &BitVec, quantized: bool) -> Vec<f32> {
        assert_eq!(input.len(), self.topology.layers[0], "input width mismatch");
        let wb = self.topology.quant.weight_bits;
        let ab = self.topology.quant.activation_bits;
        let mut act: Vec<f32> = input.iter().map(|b| if b { 1.0 } else { -1.0 }).collect();
        let last = self.topology.num_weight_layers() - 1;
        for l in 0..=last {
            let (m, n) = self.topology.layer_shape(l);
            let w = &self.weights[l];
            let mut next = vec![0.0f32; m];
            for (o, out) in next.iter_mut().enumerate() {
                let row = &w[o * n..(o + 1) * n];
                let mut acc = self.biases[l][o];
                if quantized {
                    for (wi, ai) in row.iter().zip(&act) {
                        acc += quantize(*wi, wb) * ai;
                    }
                } else {
                    for (wi, ai) in row.iter().zip(&act) {
                        acc += *wi * ai;
                    }
                }
                *out = acc;
            }
            if l != last {
                for (o, v) in next.iter_mut().enumerate() {
                    let u = (*v - self.bn_mean[l][o]) / (self.bn_var[l][o] + BN_EPS).sqrt();
                    *v = if quantized { quantize(u, ab) } else { u.tanh() };
                }
            }
            let _ = n;
            act = next;
        }
        act
    }

    /// Predicted class under the deployed (quantized) forward pass.
    pub fn predict(&self, input: &BitVec) -> usize {
        let scores = self.forward(input);
        let mut best = 0;
        for (i, &s) in scores.iter().enumerate().skip(1) {
            if s > scores[best] {
                best = i;
            }
        }
        best
    }

    /// Fraction of samples classified correctly (quantized forward).
    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let ok = samples
            .iter()
            .filter(|s| self.predict(&s.input) == s.label)
            .count();
        ok as f64 / samples.len() as f64
    }

    /// Quantization-aware training: float pretraining (≈¾ of the epochs)
    /// followed by STE fine-tuning of the quantized network.
    pub fn train(&mut self, data: &[Sample], config: TrainConfig, seed: u64) {
        let float_epochs =
            ((config.epochs as f32) * config.float_fraction.clamp(0.0, 1.0)).round() as usize;
        let float_epochs = float_epochs.min(config.epochs);
        let ft_epochs = config.epochs - float_epochs;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0053_5445);
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..float_epochs {
            shuffle(&mut order, &mut rng);
            for &idx in &order {
                self.sgd_step(&data[idx], config.learning_rate, false);
            }
        }
        for _ in 0..ft_epochs {
            shuffle(&mut order, &mut rng);
            for &idx in &order {
                self.sgd_step(&data[idx], config.learning_rate / 3.0, true);
            }
        }
    }

    /// One SGD step on the squared-hinge one-vs-all loss. In quantized
    /// mode the forward uses quantized weights/activations and gradients
    /// flow through the straight-through estimator.
    fn sgd_step(&mut self, sample: &Sample, lr: f32, quantized: bool) {
        let wb = self.topology.quant.weight_bits;
        let ab = self.topology.quant.activation_bits;
        let last = self.topology.num_weight_layers() - 1;
        let classes = self.topology.layers[last + 1];

        // Forward, keeping (activations, pre-activations) per layer.
        let mut acts: Vec<Vec<f32>> = Vec::with_capacity(last + 2);
        acts.push(
            sample
                .input
                .iter()
                .map(|b| if b { 1.0 } else { -1.0 })
                .collect(),
        );
        let mut pres: Vec<Vec<f32>> = Vec::with_capacity(last + 1);
        for l in 0..=last {
            let (m, n) = self.topology.layer_shape(l);
            let w = &self.weights[l];
            let mut pre = vec![0.0f32; m];
            for (o, p) in pre.iter_mut().enumerate() {
                let row = &w[o * n..(o + 1) * n];
                let mut acc = self.biases[l][o];
                if quantized {
                    for (wi, ai) in row.iter().zip(&acts[l]) {
                        acc += quantize(*wi, wb) * ai;
                    }
                } else {
                    for (wi, ai) in row.iter().zip(&acts[l]) {
                        acc += *wi * ai;
                    }
                }
                *p = acc;
            }
            let out: Vec<f32> = if l != last {
                pre.iter()
                    .enumerate()
                    .map(|(o, &v)| {
                        let mean = &mut self.bn_mean[l][o];
                        *mean = BN_MOMENTUM * *mean + (1.0 - BN_MOMENTUM) * v;
                        let dev = v - *mean;
                        let var = &mut self.bn_var[l][o];
                        *var = BN_MOMENTUM * *var + (1.0 - BN_MOMENTUM) * dev * dev;
                        let u = dev / (*var + BN_EPS).sqrt();
                        if quantized {
                            quantize(u, ab)
                        } else {
                            u.tanh()
                        }
                    })
                    .collect()
            } else {
                pre.clone()
            };
            pres.push(pre);
            acts.push(out);
        }

        // Output deltas: squared hinge, one-vs-all with margin 1, scores
        // normalized by the output fan-in.
        let out_n = (self.topology.layers[last] as f32).sqrt();
        let scores = &acts[last + 1];
        let mut delta: Vec<f32> = (0..classes)
            .map(|c| {
                let t = if c == sample.label { 1.0 } else { -1.0 };
                let margin = 1.0 - t * scores[c] / out_n;
                if margin > 0.0 {
                    -t * margin
                } else {
                    0.0
                }
            })
            .collect();

        // Backward.
        for l in (0..=last).rev() {
            let (m, n) = self.topology.layer_shape(l);
            let mut prev_delta = vec![0.0f32; n];
            for (o, dv) in delta.iter().enumerate().take(m) {
                let d = dv.clamp(-2.0, 2.0);
                if d == 0.0 {
                    continue;
                }
                let row = &mut self.weights[l][o * n..(o + 1) * n];
                for (i, wi) in row.iter_mut().enumerate() {
                    prev_delta[i] += d * if quantized { quantize(*wi, wb) } else { *wi };
                    // Shadow-weight step; clipping to [-1,1] keeps the
                    // quantizer meaningful (BinaryNet update rule).
                    *wi = (*wi - lr * d * acts[l][i]).clamp(-1.0, 1.0);
                }
                self.biases[l][o] = (self.biases[l][o] - lr * d).clamp(-8.0, 8.0);
            }
            if l > 0 {
                for (i, pd) in prev_delta.iter_mut().enumerate() {
                    let sd = (self.bn_var[l - 1][i] + BN_EPS).sqrt();
                    let u = (pres[l - 1][i] - self.bn_mean[l - 1][i]) / sd;
                    let gate = if quantized {
                        // STE: unit gradient inside the quantizer range.
                        if u.abs() <= 1.0 {
                            1.0
                        } else {
                            0.0
                        }
                    } else {
                        // tanh'(u) = 1 − tanh²(u).
                        let t = u.tanh();
                        1.0 - t * t
                    };
                    *pd = (*pd * gate / sd).clamp(-2.0, 2.0);
                }
                delta = prev_delta;
            }
        }
    }
}

fn shuffle(order: &mut [usize], rng: &mut SmallRng) {
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Quantization;

    fn toy_topology() -> Topology {
        Topology::new(
            "toy",
            vec![8, 16, 2],
            Quantization {
                weight_bits: 1,
                activation_bits: 1,
            },
        )
    }

    fn toy_data() -> Vec<Sample> {
        let mut data = Vec::new();
        for v in 0..16u32 {
            let mut low = vec![false; 8];
            let mut high = vec![false; 8];
            for b in 0..4 {
                low[b] = (v >> b) & 1 == 1 || b == 0;
                high[4 + b] = (v >> b) & 1 == 1 || b == 0;
            }
            data.push(Sample::new(BitVec::from_bools(low), 0));
            data.push(Sample::new(BitVec::from_bools(high), 1));
        }
        data
    }

    #[test]
    fn quantizer_levels() {
        assert_eq!(quantize(0.3, 1), 1.0);
        assert_eq!(quantize(-0.3, 1), -1.0);
        // 2-bit symmetric: {-1, -1/3, 1/3, 1}.
        let q = quantize(0.2, 2);
        assert!((q - 1.0 / 3.0).abs() < 1e-6, "{q}");
        assert_eq!(quantize(5.0, 2), 1.0);
    }

    #[test]
    fn untrained_forward_has_right_shape() {
        let net = QuantMlp::new(toy_topology(), 1);
        assert_eq!(net.forward(&BitVec::zeros(8)).len(), 2);
        assert_eq!(net.forward_float(&BitVec::zeros(8)).len(), 2);
    }

    #[test]
    fn learns_separable_toy_task() {
        let mut net = QuantMlp::new(toy_topology(), 7);
        let data = toy_data();
        net.train(
            &data,
            TrainConfig {
                learning_rate: 0.05,
                epochs: 40,
                float_fraction: 0.25,
            },
            3,
        );
        let acc = net.accuracy(&data);
        assert!(acc >= 0.9, "accuracy {acc}");
    }

    #[test]
    fn two_bit_variant_also_learns() {
        let topo = Topology::new(
            "toy2",
            vec![8, 16, 2],
            Quantization {
                weight_bits: 2,
                activation_bits: 2,
            },
        );
        let mut net = QuantMlp::new(topo, 9);
        let data = toy_data();
        net.train(
            &data,
            TrainConfig {
                learning_rate: 0.05,
                epochs: 40,
                float_fraction: 0.25,
            },
            4,
        );
        assert!(net.accuracy(&data) >= 0.9);
    }

    #[test]
    fn accuracy_of_empty_set_is_zero() {
        let net = QuantMlp::new(toy_topology(), 1);
        assert_eq!(net.accuracy(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_validates_width() {
        QuantMlp::new(toy_topology(), 1).forward(&BitVec::zeros(9));
    }
}
