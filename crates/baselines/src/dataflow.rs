//! FINN-style streaming-dataflow accelerator model: per-layer matrix-vector
//! units with PE×SIMD folding, weight memories, and the cycle/resource
//! behaviour the FINN compiler reports.
//!
//! In FINN every layer is a pipeline stage; a layer processes one frame in
//! `(inputs/SIMD) × (outputs/PE)` cycles, so throughput is bound by the
//! slowest layer (the initiation interval) and latency is roughly one II
//! plus per-stage fill. Weights stay on chip: ~4096 useful weight bits per
//! 36Kb BRAM once FINN's per-PE partitioning fragmentation is accounted
//! for — the divisor that reproduces the paper's 14.5 / 131 BRAM rows.

use crate::topology::Topology;
use matador_synth::resources::ResourceReport;
use serde::{Deserialize, Serialize};

/// Folding of one layer: how many rows/columns are processed in parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fold {
    /// Output-parallel processing elements (must divide the layer rows).
    pub pe: usize,
    /// Input-parallel lanes per PE (must divide the layer columns).
    pub simd: usize,
}

impl Fold {
    /// Compute lanes of this layer.
    pub fn lanes(&self) -> usize {
        self.pe * self.simd
    }
}

/// A folded dataflow design for one topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataflowDesign {
    /// The network being accelerated.
    pub topology: Topology,
    /// Folding per weight layer.
    pub folds: Vec<Fold>,
    /// Operating clock in MHz (FINN designs run at 100 MHz in the paper;
    /// the ZC706 BNN references at 200 MHz).
    pub clock_mhz: f64,
}

/// Cycle behaviour of a dataflow design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataflowTiming {
    /// Initiation interval in cycles (slowest layer fold).
    pub ii_cycles: u64,
    /// End-to-end latency of one frame in cycles.
    pub latency_cycles: u64,
}

impl DataflowDesign {
    /// Builds a design, validating divisibility.
    ///
    /// # Panics
    ///
    /// Panics if fold counts mismatch the layer count or a fold does not
    /// divide its layer's shape.
    pub fn new(topology: Topology, folds: Vec<Fold>, clock_mhz: f64) -> Self {
        assert_eq!(
            folds.len(),
            topology.num_weight_layers(),
            "one fold per weight layer required"
        );
        for (l, fold) in folds.iter().enumerate() {
            let (m, n) = topology.layer_shape(l);
            assert!(m % fold.pe == 0, "layer {l}: PE {} ∤ rows {m}", fold.pe);
            assert!(
                n % fold.simd == 0,
                "layer {l}: SIMD {} ∤ cols {n}",
                fold.simd
            );
        }
        DataflowDesign {
            topology,
            folds,
            clock_mhz,
        }
    }

    /// Chooses the smallest folding whose II meets `target_ii` cycles —
    /// the FINN flow's folding step for a frame-rate target. Every layer
    /// gets the minimal lane count that folds under the target.
    ///
    /// # Panics
    ///
    /// Panics if `target_ii == 0`.
    pub fn fold_for_target_ii(topology: Topology, target_ii: u64, clock_mhz: f64) -> Self {
        assert!(target_ii > 0, "target II must be positive");
        let mut folds = Vec::new();
        for l in 0..topology.num_weight_layers() {
            let (m, n) = topology.layer_shape(l);
            let mut best: Option<Fold> = None;
            for pe in divisors(m) {
                for simd in divisors(n) {
                    let fold_cycles = ((m / pe) * (n / simd)) as u64;
                    if fold_cycles <= target_ii {
                        let candidate = Fold { pe, simd };
                        if best.is_none_or(|b| candidate.lanes() < b.lanes()) {
                            best = Some(candidate);
                        }
                    }
                }
            }
            folds.push(best.expect("full parallel always meets any target"));
        }
        DataflowDesign::new(topology, folds, clock_mhz)
    }

    /// Cycle behaviour: II = slowest layer, latency = sum of layer folds
    /// plus stream-stage fill overhead.
    pub fn timing(&self) -> DataflowTiming {
        let mut ii = 0u64;
        let mut total = 0u64;
        for (l, fold) in self.folds.iter().enumerate() {
            let (m, n) = self.topology.layer_shape(l);
            let cycles = ((m / fold.pe) * (n / fold.simd)) as u64;
            ii = ii.max(cycles);
            total += cycles.min(ii.max(1)) / self.folds.len().max(1) as u64;
        }
        // Deep pipelines hide all but the slowest stage; the paper's FINN
        // latencies are ≈ one II plus small per-stage fill.
        let latency = ii + 10 * self.folds.len() as u64 + total / 4;
        DataflowTiming {
            ii_cycles: ii,
            latency_cycles: latency,
        }
    }

    /// Latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.timing().latency_cycles as f64 / self.clock_mhz
    }

    /// Throughput in inferences per second.
    pub fn throughput_inf_s(&self) -> f64 {
        self.clock_mhz * 1.0e6 / self.timing().ii_cycles as f64
    }

    /// Resource estimate of the folded design.
    ///
    /// Constants (documented in `EXPERIMENTS.md`): a W×A-bit MAC lane
    /// costs `wb·ab + 1` LUTs; each PE carries an accumulator/threshold
    /// unit; each layer a stream/control harness; the design AXI/DMA glue.
    /// Weight memory: 4096 useful bits per 36Kb BRAM (FINN per-PE
    /// fragmentation); thresholds live in LUTRAM.
    pub fn resources(&self) -> ResourceReport {
        let quant = self.topology.quant;
        let wb = quant.weight_bits as usize;
        let ab = quant.activation_bits as usize;
        let mut lut_logic = 3000usize; // AXI/DMA/width-converter glue
        let mut registers = 5000usize;
        let mut lut_mem = 400usize; // stream FIFOs
        let mut f7 = 40usize;
        let mut f8 = 0usize;
        for (l, fold) in self.folds.iter().enumerate() {
            let lanes = fold.lanes();
            // XNOR/mul + its share of the popcount/adder tree per lane
            // (multi-bit MACs decompose into wb×ab binary planes plus
            // recombination, ≈3 LUTs per plane in the FINN MVAU).
            let mac = lanes * (3 * wb * ab + 2);
            let acc = fold.pe * (14 + 6 * ab);
            lut_logic += mac + acc + 500;
            registers += lanes * (wb + 2) + fold.pe * 30 + 900;
            lut_mem += fold.pe * ab * 8; // threshold storage
            f7 += fold.pe / 2;
            f8 += fold.pe / 8;
            let _ = l;
        }
        let bram = (self.topology.weight_bits() as f64 / 4096.0 * 2.0).round() / 2.0;
        let ideal = (lut_logic + lut_mem).div_ceil(4).max(registers.div_ceil(8));
        let slices = (ideal as f64 * 1.9).round() as usize;
        ResourceReport {
            lut_logic,
            lut_mem,
            registers,
            slices,
            f7_mux: f7,
            f8_mux: f8,
            bram,
        }
    }
}

fn divisors(v: usize) -> Vec<usize> {
    (1..=v).filter(|d| v.is_multiple_of(*d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_folding_reproduces_paper_ii() {
        // Paper FINN-MNIST: 954,457 inf/s at 100 MHz → II ≈ 105 cycles.
        let d = DataflowDesign::fold_for_target_ii(Topology::finn_mnist(), 105, 100.0);
        let t = d.timing();
        assert!(t.ii_cycles <= 105);
        assert!(t.ii_cycles > 50, "II {} suspiciously low", t.ii_cycles);
        let fps = d.throughput_inf_s();
        assert!(
            (900_000.0..1_600_000.0).contains(&fps),
            "throughput {fps} out of band"
        );
    }

    #[test]
    fn mnist_bram_matches_paper_row() {
        let d = DataflowDesign::fold_for_target_ii(Topology::finn_mnist(), 105, 100.0);
        let r = d.resources();
        // Paper: 14.5 BRAM.
        assert!((r.bram - 14.4).abs() < 0.7, "bram {}", r.bram);
    }

    #[test]
    fn fmnist_bram_matches_paper_row() {
        let d = DataflowDesign::fold_for_target_ii(Topology::finn_fmnist(), 430, 100.0);
        let r = d.resources();
        // Paper: 131 BRAM.
        assert!((r.bram - 131.0).abs() < 5.0, "bram {}", r.bram);
    }

    #[test]
    fn mnist_luts_in_paper_neighbourhood() {
        let d = DataflowDesign::fold_for_target_ii(Topology::finn_mnist(), 105, 100.0);
        let r = d.resources();
        // Paper: 11,622 LUTs / 17,990 registers. Model must land within
        // ~35% — it feeds Table I where only relative magnitude matters.
        assert!((7_500..16_000).contains(&r.luts()), "luts {}", r.luts());
        assert!(
            (11_000..25_000).contains(&r.registers),
            "regs {}",
            r.registers
        );
    }

    #[test]
    fn tighter_ii_costs_more_lanes() {
        let slow = DataflowDesign::fold_for_target_ii(Topology::finn_mnist(), 800, 100.0);
        let fast = DataflowDesign::fold_for_target_ii(Topology::finn_mnist(), 60, 100.0);
        assert!(fast.resources().luts() > slow.resources().luts());
        assert!(fast.timing().ii_cycles < slow.timing().ii_cycles);
    }

    #[test]
    fn latency_close_to_ii() {
        let d = DataflowDesign::fold_for_target_ii(Topology::finn_mnist(), 105, 100.0);
        let t = d.timing();
        assert!(t.latency_cycles >= t.ii_cycles);
        assert!(t.latency_cycles < 2 * t.ii_cycles + 80);
    }

    #[test]
    #[should_panic(expected = "PE")]
    fn validates_divisibility() {
        DataflowDesign::new(
            Topology::finn_mnist(),
            vec![
                Fold { pe: 7, simd: 4 }, // 7 ∤ 64
                Fold { pe: 1, simd: 1 },
                Fold { pe: 1, simd: 1 },
                Fold { pe: 1, simd: 1 },
            ],
            100.0,
        );
    }

    #[test]
    fn full_parallel_ii_is_one() {
        let topo = Topology::finn_mnist();
        let folds: Vec<Fold> = (0..topo.num_weight_layers())
            .map(|l| {
                let (m, n) = topo.layer_shape(l);
                Fold { pe: m, simd: n }
            })
            .collect();
        let d = DataflowDesign::new(topo, folds, 200.0);
        assert_eq!(d.timing().ii_cycles, 1);
    }
}
