//! Baseline network topologies and quantization configurations (Table II).

use serde::{Deserialize, Serialize};

/// Quantization of one network (weights / activations, in bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quantization {
    /// Weight bits (1 = binary ±1).
    pub weight_bits: u8,
    /// Activation bits (1 = sign).
    pub activation_bits: u8,
}

/// A fully-connected BNN/QNN topology plus quantization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Human-readable name, e.g. `"FINN MNIST"`.
    pub name: String,
    /// Layer widths including input and output, e.g. `[784,64,64,64,10]`.
    pub layers: Vec<usize>,
    /// Quantization config.
    pub quant: Quantization,
}

impl Topology {
    /// Builds a topology.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layer widths are given or any is zero.
    pub fn new(name: impl Into<String>, layers: Vec<usize>, quant: Quantization) -> Self {
        assert!(layers.len() >= 2, "need at least input and output widths");
        assert!(layers.iter().all(|&w| w > 0), "zero-width layer");
        Topology {
            name: name.into(),
            layers,
            quant,
        }
    }

    /// Number of weight layers.
    pub fn num_weight_layers(&self) -> usize {
        self.layers.len() - 1
    }

    /// (rows, cols) = (outputs, inputs) of weight layer `l`.
    pub fn layer_shape(&self, l: usize) -> (usize, usize) {
        (self.layers[l + 1], self.layers[l])
    }

    /// Total multiply-accumulate operations per inference.
    pub fn total_ops(&self) -> usize {
        (0..self.num_weight_layers())
            .map(|l| {
                let (m, n) = self.layer_shape(l);
                m * n
            })
            .sum()
    }

    /// Total weight storage bits.
    pub fn weight_bits(&self) -> usize {
        self.total_ops() * self.quant.weight_bits as usize
    }

    /// The paper's FINN topology for each Table I dataset (Table II), and
    /// the BNN-r/f reference topology from the FINN paper.
    pub fn finn_mnist() -> Topology {
        Topology::new(
            "FINN MNIST",
            vec![784, 64, 64, 64, 10],
            Quantization {
                weight_bits: 1,
                activation_bits: 1,
            },
        )
    }

    /// FINN KWS-6: 377-512-256-6, 1-bit input, 2-bit weights/activations.
    pub fn finn_kws6() -> Topology {
        Topology::new(
            "FINN KWS-6",
            vec![377, 512, 256, 6],
            Quantization {
                weight_bits: 2,
                activation_bits: 2,
            },
        )
    }

    /// FINN CIFAR-2: 1024-256-128-2, 1-bit weights, 2-bit activations.
    pub fn finn_cifar2() -> Topology {
        Topology::new(
            "FINN CIFAR-2",
            vec![1024, 256, 128, 2],
            Quantization {
                weight_bits: 1,
                activation_bits: 2,
            },
        )
    }

    /// FINN FMNIST: 784-256-256-10, 2-bit weights/activations.
    pub fn finn_fmnist() -> Topology {
        Topology::new(
            "FINN FMNIST",
            vec![784, 256, 256, 10],
            Quantization {
                weight_bits: 2,
                activation_bits: 2,
            },
        )
    }

    /// FINN KMNIST: same shape as FMNIST.
    pub fn finn_kmnist() -> Topology {
        Topology::new(
            "FINN KMNIST",
            vec![784, 256, 256, 10],
            Quantization {
                weight_bits: 2,
                activation_bits: 2,
            },
        )
    }

    /// The BNN reference topology of [3]: 784-256-256-256-10, fully binary
    /// (used for both the resource-efficient `-r` and fast `-f` variants).
    pub fn bnn_ref() -> Topology {
        Topology::new(
            "BNN-ref",
            vec![784, 256, 256, 256, 10],
            Quantization {
                weight_bits: 1,
                activation_bits: 1,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_topology_matches_table_ii() {
        let t = Topology::finn_mnist();
        assert_eq!(t.layers, vec![784, 64, 64, 64, 10]);
        assert_eq!(t.num_weight_layers(), 4);
        assert_eq!(t.total_ops(), 784 * 64 + 64 * 64 + 64 * 64 + 64 * 10);
        assert_eq!(t.weight_bits(), t.total_ops());
    }

    #[test]
    fn kws_weight_bits_doubled() {
        let t = Topology::finn_kws6();
        assert_eq!(t.weight_bits(), 2 * t.total_ops());
    }

    #[test]
    fn layer_shapes() {
        let t = Topology::finn_cifar2();
        assert_eq!(t.layer_shape(0), (256, 1024));
        assert_eq!(t.layer_shape(2), (2, 128));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_degenerate() {
        Topology::new(
            "x",
            vec![4],
            Quantization {
                weight_bits: 1,
                activation_bits: 1,
            },
        );
    }
}
