//! Baseline network topologies and quantization configurations (Table II).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when a [`Topology`]'s layer list is malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// Fewer than two layer widths (need at least input and output).
    TooFewLayers {
        /// The rejected layer count.
        got: usize,
    },
    /// A layer width of zero.
    ZeroWidthLayer {
        /// Index of the zero-width layer.
        index: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologyError::TooFewLayers { got } => write!(
                f,
                "topology needs at least input and output widths (got {got} layers)"
            ),
            TopologyError::ZeroWidthLayer { index } => {
                write!(f, "topology layer {index} has zero width")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Quantization of one network (weights / activations, in bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quantization {
    /// Weight bits (1 = binary ±1).
    pub weight_bits: u8,
    /// Activation bits (1 = sign).
    pub activation_bits: u8,
}

/// A fully-connected BNN/QNN topology plus quantization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Human-readable name, e.g. `"FINN MNIST"`.
    pub name: String,
    /// Layer widths including input and output, e.g. `[784,64,64,64,10]`.
    pub layers: Vec<usize>,
    /// Quantization config.
    pub quant: Quantization,
}

impl Topology {
    /// Builds a topology, validating the layer list.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if fewer than two layer widths are given
    /// or any width is zero.
    pub fn try_new(
        name: impl Into<String>,
        layers: Vec<usize>,
        quant: Quantization,
    ) -> Result<Self, TopologyError> {
        if layers.len() < 2 {
            return Err(TopologyError::TooFewLayers { got: layers.len() });
        }
        if let Some(index) = layers.iter().position(|&w| w == 0) {
            return Err(TopologyError::ZeroWidthLayer { index });
        }
        Ok(Topology {
            name: name.into(),
            layers,
            quant,
        })
    }

    /// Builds a topology from a layer list known to be well-formed.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layer widths are given or any is zero;
    /// use [`Topology::try_new`] for untrusted input.
    pub fn new(name: impl Into<String>, layers: Vec<usize>, quant: Quantization) -> Self {
        match Topology::try_new(name, layers, quant) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of weight layers.
    pub fn num_weight_layers(&self) -> usize {
        self.layers.len() - 1
    }

    /// (rows, cols) = (outputs, inputs) of weight layer `l`.
    pub fn layer_shape(&self, l: usize) -> (usize, usize) {
        (self.layers[l + 1], self.layers[l])
    }

    /// Total multiply-accumulate operations per inference.
    pub fn total_ops(&self) -> usize {
        (0..self.num_weight_layers())
            .map(|l| {
                let (m, n) = self.layer_shape(l);
                m * n
            })
            .sum()
    }

    /// Total weight storage bits.
    pub fn weight_bits(&self) -> usize {
        self.total_ops() * self.quant.weight_bits as usize
    }

    /// The paper's FINN topology for each Table I dataset (Table II), and
    /// the BNN-r/f reference topology from the FINN paper.
    pub fn finn_mnist() -> Topology {
        Topology::new(
            "FINN MNIST",
            vec![784, 64, 64, 64, 10],
            Quantization {
                weight_bits: 1,
                activation_bits: 1,
            },
        )
    }

    /// FINN KWS-6: 377-512-256-6, 1-bit input, 2-bit weights/activations.
    pub fn finn_kws6() -> Topology {
        Topology::new(
            "FINN KWS-6",
            vec![377, 512, 256, 6],
            Quantization {
                weight_bits: 2,
                activation_bits: 2,
            },
        )
    }

    /// FINN CIFAR-2: 1024-256-128-2, 1-bit weights, 2-bit activations.
    pub fn finn_cifar2() -> Topology {
        Topology::new(
            "FINN CIFAR-2",
            vec![1024, 256, 128, 2],
            Quantization {
                weight_bits: 1,
                activation_bits: 2,
            },
        )
    }

    /// FINN FMNIST: 784-256-256-10, 2-bit weights/activations.
    pub fn finn_fmnist() -> Topology {
        Topology::new(
            "FINN FMNIST",
            vec![784, 256, 256, 10],
            Quantization {
                weight_bits: 2,
                activation_bits: 2,
            },
        )
    }

    /// FINN KMNIST: same shape as FMNIST.
    pub fn finn_kmnist() -> Topology {
        Topology::new(
            "FINN KMNIST",
            vec![784, 256, 256, 10],
            Quantization {
                weight_bits: 2,
                activation_bits: 2,
            },
        )
    }

    /// The BNN reference topology of \[3\]: 784-256-256-256-10, fully binary
    /// (used for both the resource-efficient `-r` and fast `-f` variants).
    pub fn bnn_ref() -> Topology {
        Topology::new(
            "BNN-ref",
            vec![784, 256, 256, 256, 10],
            Quantization {
                weight_bits: 1,
                activation_bits: 1,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_topology_matches_table_ii() {
        let t = Topology::finn_mnist();
        assert_eq!(t.layers, vec![784, 64, 64, 64, 10]);
        assert_eq!(t.num_weight_layers(), 4);
        assert_eq!(t.total_ops(), 784 * 64 + 64 * 64 + 64 * 64 + 64 * 10);
        assert_eq!(t.weight_bits(), t.total_ops());
    }

    #[test]
    fn kws_weight_bits_doubled() {
        let t = Topology::finn_kws6();
        assert_eq!(t.weight_bits(), 2 * t.total_ops());
    }

    #[test]
    fn layer_shapes() {
        let t = Topology::finn_cifar2();
        assert_eq!(t.layer_shape(0), (256, 1024));
        assert_eq!(t.layer_shape(2), (2, 128));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_degenerate() {
        Topology::new(
            "x",
            vec![4],
            Quantization {
                weight_bits: 1,
                activation_bits: 1,
            },
        );
    }

    #[test]
    fn try_new_reports_typed_errors() {
        let q = Quantization {
            weight_bits: 1,
            activation_bits: 1,
        };
        assert_eq!(
            Topology::try_new("x", vec![4], q).unwrap_err(),
            TopologyError::TooFewLayers { got: 1 }
        );
        assert_eq!(
            Topology::try_new("x", vec![4, 0, 2], q).unwrap_err(),
            TopologyError::ZeroWidthLayer { index: 1 }
        );
        assert!(Topology::try_new("x", vec![4, 2], q).is_ok());
    }
}
