//! The exact baseline configurations evaluated in Table I: the five FINN
//! builds re-run on the Pynq Z1 at 100 MHz, and the two ZC706 BNN
//! reference designs from the FINN paper \[3\] at 200 MHz.

use crate::dataflow::DataflowDesign;
use crate::topology::Topology;

/// Identifier of a Table I baseline row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BaselineKind {
    /// FINN flow build for a given dataset (100 MHz, XC7Z020).
    FinnMnist,
    /// FINN KWS-6 build.
    FinnKws6,
    /// FINN CIFAR-2 build.
    FinnCifar2,
    /// FINN FMNIST build.
    FinnFmnist,
    /// FINN KMNIST build.
    FinnKmnist,
    /// Resource-efficient BNN reference of \[3\] (ZC706, 200 MHz).
    BnnRRef,
    /// Fast (max-unfolded) BNN reference of \[3\] (ZC706, 200 MHz).
    BnnFRef,
}

impl BaselineKind {
    /// Folding initiation-interval target (cycles) the published build
    /// chose, back-derived from the paper's throughput column at the
    /// design's clock.
    pub fn target_ii(self) -> u64 {
        match self {
            // 954,457 inf/s @ 100 MHz.
            BaselineKind::FinnMnist => 105,
            // 750,188 inf/s @ 100 MHz.
            BaselineKind::FinnKws6 => 133,
            // 1,369,879 inf/s @ 100 MHz.
            BaselineKind::FinnCifar2 => 73,
            // 232,114 inf/s @ 100 MHz.
            BaselineKind::FinnFmnist => 430,
            // 255,127 inf/s @ 100 MHz.
            BaselineKind::FinnKmnist => 392,
            // 12,200 inf/s @ 200 MHz.
            BaselineKind::BnnRRef => 16_393,
            // 12,361,000 inf/s @ 200 MHz → fully unfolded.
            BaselineKind::BnnFRef => 16,
        }
    }

    /// Operating clock in MHz.
    pub fn clock_mhz(self) -> f64 {
        match self {
            BaselineKind::BnnRRef | BaselineKind::BnnFRef => 200.0,
            _ => 100.0,
        }
    }

    /// The network topology (Table II).
    pub fn topology(self) -> Topology {
        match self {
            BaselineKind::FinnMnist => Topology::finn_mnist(),
            BaselineKind::FinnKws6 => Topology::finn_kws6(),
            BaselineKind::FinnCifar2 => Topology::finn_cifar2(),
            BaselineKind::FinnFmnist => Topology::finn_fmnist(),
            BaselineKind::FinnKmnist => Topology::finn_kmnist(),
            BaselineKind::BnnRRef | BaselineKind::BnnFRef => Topology::bnn_ref(),
        }
    }

    /// Builds the folded dataflow design for this baseline.
    pub fn design(self) -> DataflowDesign {
        DataflowDesign::fold_for_target_ii(self.topology(), self.target_ii(), self.clock_mhz())
    }

    /// Display name matching the Table I row labels.
    pub fn label(self) -> &'static str {
        match self {
            BaselineKind::FinnMnist => "FINN",
            BaselineKind::FinnKws6 => "FINN",
            BaselineKind::FinnCifar2 => "FINN",
            BaselineKind::FinnFmnist => "FINN",
            BaselineKind::FinnKmnist => "FINN",
            BaselineKind::BnnRRef => "BNN-r-ref",
            BaselineKind::BnnFRef => "BNN-f-ref",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughputs_track_paper_rows() {
        // (kind, paper inf/s, tolerance factor)
        let rows = [
            (BaselineKind::FinnMnist, 954_457.0),
            (BaselineKind::FinnKws6, 750_188.0),
            (BaselineKind::FinnCifar2, 1_369_879.0),
            (BaselineKind::FinnFmnist, 232_114.0),
            (BaselineKind::FinnKmnist, 255_127.0),
        ];
        for (kind, paper) in rows {
            let fps = kind.design().throughput_inf_s();
            let ratio = fps / paper;
            assert!(
                (0.8..2.0).contains(&ratio),
                "{kind:?}: {fps} vs paper {paper}"
            );
        }
    }

    #[test]
    fn bnn_f_is_orders_faster_than_bnn_r() {
        let fast = BaselineKind::BnnFRef.design().throughput_inf_s();
        let slow = BaselineKind::BnnRRef.design().throughput_inf_s();
        assert!(fast / slow > 100.0);
    }

    #[test]
    fn bnn_f_uses_far_more_luts_than_bnn_r() {
        let fast = BaselineKind::BnnFRef.design().resources().luts();
        let slow = BaselineKind::BnnRRef.design().resources().luts();
        assert!(fast > 5 * slow, "fast {fast} slow {slow}");
    }

    #[test]
    fn finn_brams_scale_with_model_size() {
        let mnist = BaselineKind::FinnMnist.design().resources().bram;
        let fmnist = BaselineKind::FinnFmnist.design().resources().bram;
        assert!(fmnist > 5.0 * mnist);
    }

    #[test]
    fn clocks_match_boards() {
        assert_eq!(BaselineKind::FinnMnist.clock_mhz(), 100.0);
        assert_eq!(BaselineKind::BnnFRef.clock_mhz(), 200.0);
    }
}
